//! The unified client surface: one [`ResourceManager`] trait over every
//! deployment of the pipeline, with ticket-based pipelined submission.
//!
//! The paper's central claim is that the *same* pipeline stages can be
//! deployed embedded, distributed/replicated, or simulated.  This module is
//! the seam that makes the claim visible to clients: a single trait served
//! by five backends —
//!
//! | backend | constructor | what it is |
//! |---|---|---|
//! | [`EmbeddedBackend`] | [`PipelineBuilder::build_embedded`] | the synchronous [`Engine`] in one address space |
//! | [`LiveBackend`] | [`PipelineBuilder::build_live`] | [`LivePipeline`], every stage on its own thread, with a bounded in-flight window |
//! | [`CentralQueueBackend`] | [`PipelineBuilder::build_central_queue`] | the PBS/SGE-style centralized multi-queue scheduler baseline |
//! | [`MatchmakerBackend`] | [`PipelineBuilder::build_matchmaker`] | the Condor-style centralized matchmaker baseline |
//! | [`RemoteBackend`] | [`PipelineBuilder::remote`] | a client of the `ypd` daemon: the same surface across a TCP hop, speaking the [`actyp_proto`] wire protocol (serve any backend with [`PipelineBuilder::serve`]) |
//!
//! Submission is *ticket based*: [`ResourceManager::submit`] returns a
//! [`Ticket`] immediately and [`ResourceManager::wait`] /
//! [`ResourceManager::try_poll`] redeem it later.  On the live backend this
//! makes the paper's pipelining real for a single client — N submitted
//! tickets overlap across the query-manager, pool-manager and pool stages —
//! while the embedded and baseline backends resolve tickets eagerly, so the
//! same client code runs against every architecture.  A
//! [`StatsSnapshot`] unifies the per-stage counters all backends report.
//!
//! # Example
//!
//! ```
//! use actyp_grid::{FleetSpec, SyntheticFleet};
//! use actyp_pipeline::api::{BackendKind, PipelineBuilder, ResourceManager};
//!
//! let db = SyntheticFleet::new(FleetSpec::with_machines(200), 42)
//!     .generate()
//!     .into_shared();
//! let manager = PipelineBuilder::new()
//!     .database(db)
//!     .build(BackendKind::Embedded)
//!     .unwrap();
//!
//! // Submit two queries, then redeem the tickets.
//! let first = manager.submit_text("punch.rsrc.arch = sun\n").unwrap();
//! let second = manager.submit_text("punch.rsrc.arch = hp\n").unwrap();
//! let sun = manager.wait(first).unwrap();
//! let hp = manager.wait(second).unwrap();
//! assert!(sun[0].machine_name.contains("sun"));
//! assert!(hp[0].machine_name.contains("hp"));
//!
//! for allocation in sun.iter().chain(hp.iter()) {
//!     manager.release(allocation).unwrap();
//! }
//! assert_eq!(manager.stats().releases, 2);
//! manager.shutdown().unwrap();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use actyp_baselines::{CentralScheduler, Matchmaker};
use actyp_grid::{MachineId, ResourceDatabase, SharedDatabase};
use actyp_query::{BasicQuery, PoolName, Query};

use crate::allocation::{Allocation, AllocationError, SessionKey};
use crate::engine::{Engine, EngineStats, PipelineConfig};
use crate::live::LivePipeline;
use crate::message::{RequestId, StageAddress};
use crate::pool_manager::InstanceSelection;
use crate::query_manager::{PoolManagerSelection, ReintegrationPolicy};
use crate::scheduler::SchedulingObjective;

pub use crate::reactor::PollerKind;
pub use crate::remote::{RemoteBackend, ServerConfig, ServerHandle, SessionMode};
pub use actyp_proto::types::StatsSnapshot;

/// The outcome a ticket resolves to.
pub type QueryOutcome = Result<Vec<Allocation>, AllocationError>;

/// Federated domains: one pool manager per `(name, database)` pair.
pub type DomainList = Vec<(String, SharedDatabase)>;

/// Process-wide counter branding every backend instance, so a ticket
/// redeemed on a different manager than the one that issued it is detected
/// instead of silently resolving to another query's outcome.
static BACKEND_BRANDS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn next_backend_brand() -> u64 {
    BACKEND_BRANDS.fetch_add(1, Ordering::Relaxed)
}

/// Handle to one submitted query; redeem it with
/// [`ResourceManager::wait`] or [`ResourceManager::try_poll`].
///
/// Tickets are branded with the issuing backend instance: redeeming one on
/// a different manager fails with [`AllocationError::UnknownTicket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    brand: u64,
    id: u64,
}

impl Ticket {
    /// The ticket's backend-local identifier (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The issuing backend's brand (ticket-forgery checks).
    pub(crate) fn brand(&self) -> u64 {
        self.brand
    }

    /// Rebuilds a ticket from its parts (used by the remote backend, whose
    /// ticket ids are issued by the server).
    pub(crate) fn from_parts(brand: u64, id: u64) -> Self {
        Ticket { brand, id }
    }
}

/// Which deployment a [`PipelineBuilder`] should construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The embedded, synchronous pipeline ([`Engine`]).
    Embedded,
    /// The threaded pipeline ([`LivePipeline`]), one thread per stage.
    Live,
    /// The centralized multi-queue scheduler baseline.
    CentralQueue,
    /// The centralized matchmaker baseline.
    Matchmaker,
}

impl BackendKind {
    /// Every backend, in the order the comparison figures use.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Embedded,
        BackendKind::Live,
        BackendKind::CentralQueue,
        BackendKind::Matchmaker,
    ];
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BackendKind::Embedded => "embedded",
            BackendKind::Live => "live",
            BackendKind::CentralQueue => "central-queue",
            BackendKind::Matchmaker => "matchmaker",
        };
        f.write_str(name)
    }
}

/// Folds an [`EngineStats`] (shared by the embedded and live pipelines)
/// into the unified [`StatsSnapshot`] the trait reports.  The snapshot type
/// itself lives in [`actyp_proto`] — it crosses the wire verbatim.
fn snapshot_from_engine(
    stats: EngineStats,
    records_examined: u64,
    in_flight: usize,
) -> StatsSnapshot {
    StatsSnapshot {
        requests: stats.requests,
        fragments: stats.fragments,
        allocations: stats.allocations,
        failures: stats.failures,
        delegations: stats.delegations,
        forwards: stats.forwards,
        // WAN federation counters belong to the federated daemon wrapper
        // (`crate::federation::FederatedBackend`), not to an in-process
        // engine.
        delegations_out: 0,
        delegations_in: 0,
        releases: stats.releases,
        records_examined,
        in_flight,
        gossip_deltas_in: 0,
        gossip_deltas_out: 0,
        route_hits: 0,
        route_misses: 0,
        peer_redials: 0,
        // The sharded backends overlay their own contention count on the
        // snapshot after this fold; the transport batching counters are
        // owned by the daemon's reactor and overlaid server-side.
        shard_contention: 0,
        frames_batched: 0,
        writes_coalesced: 0,
    }
}

/// The one client surface over every deployment of the resource manager.
///
/// All methods take `&self`; backends use interior mutability (embedded,
/// baselines) or channels (live), so a manager can be shared across client
/// threads behind an `Arc` without an external lock.
pub trait ResourceManager: Send + Sync {
    /// Submits a query, returning a ticket for the eventual outcome.
    ///
    /// On the live backend the query is launched into the pipeline and this
    /// returns immediately (blocking only when the in-flight window is
    /// full); the embedded and baseline backends resolve the query eagerly
    /// and the ticket redeems instantly.
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError>;

    /// Blocks until the ticket's query finishes and returns its outcome.
    /// Each ticket can be redeemed exactly once.
    fn wait(&self, ticket: Ticket) -> QueryOutcome;

    /// Non-blocking redemption: `None` while the query is still in flight,
    /// `Some(outcome)` once it finished (the ticket is then spent).
    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome>;

    /// Bounded redemption: blocks up to `timeout` for the outcome.  Returns
    /// `None` if the deadline elapses first — the ticket then remains
    /// redeemable.  The default implementation polls; the remote backend
    /// ships the deadline to the server instead, so the wait (and its
    /// timeout) happen one network hop away.
    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(outcome) = self.try_poll(ticket) {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            std::thread::sleep((deadline - now).min(Duration::from_micros(200)));
        }
    }

    /// Releases an allocation back to the resource manager.
    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError>;

    /// A snapshot of the backend's lifetime counters.
    fn stats(&self) -> StatsSnapshot;

    /// Tears the backend down.  The live backend joins every stage thread
    /// and surfaces worker panics here; the others are no-ops.  Idempotent.
    fn shutdown(&self) -> Result<(), AllocationError>;

    /// Submits a query written in the native key/value text format.
    fn submit_text(&self, text: &str) -> Result<Ticket, AllocationError> {
        let query =
            actyp_query::parse_query(text).map_err(|e| AllocationError::Parse(e.to_string()))?;
        self.submit(query)
    }

    /// Submits a batch of queries, returning one ticket per query.  On the
    /// live backend the whole batch is in flight at once; a batch that
    /// cannot fit in the in-flight window alongside the outstanding tickets
    /// is rejected rather than deadlocking the caller.
    ///
    /// The batch is all-or-nothing: if a submission fails mid-batch, the
    /// tickets already issued for it are settled internally and their
    /// allocations released, so no in-flight slot or machine claim leaks,
    /// and the error is returned.
    fn submit_batch(&self, queries: Vec<Query>) -> Result<Vec<Ticket>, AllocationError> {
        submit_batch_cancelling(self, queries)
    }

    /// Convenience: submit one query and block for its outcome.
    fn submit_wait(&self, query: &Query) -> QueryOutcome {
        let ticket = self.submit(query.clone())?;
        self.wait(ticket)
    }

    /// Convenience: submit one text query and block for its outcome.
    fn submit_text_wait(&self, text: &str) -> QueryOutcome {
        let ticket = self.submit_text(text)?;
        self.wait(ticket)
    }
}

/// A shared manager is a manager: every method (including the provided
/// ones, so backend overrides like the remote batch submission are
/// preserved) forwards to the pointee.  This is what lets one backend
/// instance be hosted behind a server *and* kept by the caller — e.g. a
/// federated daemon, which is simultaneously the served manager and the
/// target of incoming peer delegations.
impl<T: ResourceManager + ?Sized> ResourceManager for std::sync::Arc<T> {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        (**self).submit(query)
    }
    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        (**self).wait(ticket)
    }
    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        (**self).try_poll(ticket)
    }
    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        (**self).wait_deadline(ticket, timeout)
    }
    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        (**self).release(allocation)
    }
    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }
    fn shutdown(&self) -> Result<(), AllocationError> {
        (**self).shutdown()
    }
    fn submit_text(&self, text: &str) -> Result<Ticket, AllocationError> {
        (**self).submit_text(text)
    }
    fn submit_batch(&self, queries: Vec<Query>) -> Result<Vec<Ticket>, AllocationError> {
        (**self).submit_batch(queries)
    }
    fn submit_wait(&self, query: &Query) -> QueryOutcome {
        (**self).submit_wait(query)
    }
    fn submit_text_wait(&self, text: &str) -> QueryOutcome {
        (**self).submit_text_wait(text)
    }
}

/// Shared all-or-nothing batch submission: on a mid-batch failure every
/// already-issued ticket is settled and its allocations are handed back, so
/// the caller never loses tickets it cannot redeem (and, on the live
/// backend, no window permit stays captive).
fn submit_batch_cancelling<M: ResourceManager + ?Sized>(
    manager: &M,
    queries: Vec<Query>,
) -> Result<Vec<Ticket>, AllocationError> {
    let mut tickets = Vec::with_capacity(queries.len());
    for query in queries {
        match manager.submit(query) {
            Ok(ticket) => tickets.push(ticket),
            Err(e) => {
                for ticket in tickets {
                    if let Ok(allocations) = manager.wait(ticket) {
                        for a in &allocations {
                            let _ = manager.release(a);
                        }
                    }
                }
                return Err(e);
            }
        }
    }
    Ok(tickets)
}

/// Store of eagerly resolved tickets (embedded and baseline backends).
struct ReadyTickets {
    brand: u64,
    next: AtomicU64,
    ready: Mutex<HashMap<u64, QueryOutcome>>,
}

impl ReadyTickets {
    fn new() -> Self {
        ReadyTickets {
            brand: next_backend_brand(),
            next: AtomicU64::new(0),
            ready: Mutex::new(HashMap::new()),
        }
    }

    fn issue(&self, outcome: QueryOutcome) -> Ticket {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.ready.lock().insert(id, outcome);
        Ticket {
            brand: self.brand,
            id,
        }
    }

    fn take(&self, ticket: Ticket) -> QueryOutcome {
        if ticket.brand != self.brand {
            return Err(AllocationError::UnknownTicket);
        }
        self.ready
            .lock()
            .remove(&ticket.id)
            .unwrap_or(Err(AllocationError::UnknownTicket))
    }

    fn len(&self) -> usize {
        self.ready.lock().len()
    }
}

/// One permit pool of the sharded admission window.
struct WindowLane {
    permits: std::sync::Mutex<usize>,
    available: Condvar,
}

/// A counting semaphore bounding the live backend's in-flight window,
/// split into per-lane permit pools with a steal path.
///
/// The old single `Mutex<usize>` + condvar was a process-global
/// rendezvous every submission and every settle crossed: one hot client
/// saturating it starved every other session's submits behind one lock
/// queue.  Permits are now dealt across lanes; an acquire starts at a
/// round-robin home lane, sweeps the other lanes non-blockingly (the
/// steal path, so capacity is never stranded in an idle lane), and only
/// parks — with a bounded rescan interval — when every lane is empty.
/// Releases return the permit to the lane it came from, keeping the
/// pools balanced under symmetric load.
struct Window {
    capacity: usize,
    lanes: Box<[WindowLane]>,
    cursor: AtomicU64,
    /// Acquires that found every lane empty or locked and had to park.
    contention: AtomicU64,
}

/// How long a parked acquirer waits on its home lane before rescanning
/// the other lanes for a stolen permit released elsewhere.
const WINDOW_RESCAN_INTERVAL: Duration = Duration::from_micros(500);

impl Window {
    fn new(permits: usize, lanes: usize) -> Self {
        let capacity = permits.max(1);
        let lanes = lanes.clamp(1, capacity);
        let base = capacity / lanes;
        let remainder = capacity % lanes;
        Window {
            capacity,
            lanes: (0..lanes)
                .map(|i| WindowLane {
                    permits: std::sync::Mutex::new(base + usize::from(i < remainder)),
                    available: Condvar::new(),
                })
                .collect(),
            cursor: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        }
    }

    /// Non-blocking sweep over every lane starting at `start`; takes the
    /// first free permit found.  A lane whose lock is momentarily held is
    /// skipped rather than waited on — the next lane may be free.
    fn scan_from(&self, start: usize) -> Option<usize> {
        for offset in 0..self.lanes.len() {
            let idx = (start + offset) % self.lanes.len();
            let lane = &self.lanes[idx];
            let Ok(mut permits) = lane.permits.try_lock() else {
                continue;
            };
            if *permits > 0 {
                *permits -= 1;
                return Some(idx);
            }
        }
        None
    }

    /// Acquires a permit, blocking until one frees; returns the lane the
    /// permit was taken from (releases must return it there).
    fn acquire(&self) -> usize {
        self.acquire_until(None).expect("unbounded window acquire")
    }

    /// Acquires a permit, giving up at `deadline`.  Returns the permit's
    /// lane, or `None` when the deadline passed first — the
    /// deadline-bounded backpressure batch submission applies instead of
    /// blocking indefinitely.
    fn acquire_deadline(&self, deadline: Instant) -> Option<usize> {
        self.acquire_until(Some(deadline))
    }

    fn acquire_until(&self, deadline: Option<Instant>) -> Option<usize> {
        let home = (self.cursor.fetch_add(1, Ordering::Relaxed) % self.lanes.len() as u64) as usize;
        if let Some(lane) = self.scan_from(home) {
            return Some(lane);
        }
        self.contention.fetch_add(1, Ordering::Relaxed);
        loop {
            {
                let lane = &self.lanes[home];
                let mut permits = lane.permits.lock().expect("window lock");
                loop {
                    if *permits > 0 {
                        *permits -= 1;
                        return Some(home);
                    }
                    let now = Instant::now();
                    let wait = match deadline {
                        Some(d) if now >= d => return None,
                        Some(d) => WINDOW_RESCAN_INTERVAL.min(d - now),
                        None => WINDOW_RESCAN_INTERVAL,
                    };
                    let (guard, timed_out) = lane
                        .available
                        .wait_timeout(permits, wait)
                        .expect("window lock");
                    permits = guard;
                    if timed_out.timed_out() {
                        // Rescan the other lanes: a permit may have been
                        // released to a lane nobody was parked on.
                        break;
                    }
                }
            }
            if let Some(lane) = self.scan_from(home) {
                return Some(lane);
            }
        }
    }

    fn release(&self, lane: usize) {
        let lane = &self.lanes[lane];
        *lane.permits.lock().expect("window lock") += 1;
        lane.available.notify_one();
    }

    /// Acquires that found every lane dry and had to park.
    fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

/// The embedded [`Engine`] behind the unified surface.
///
/// Queries are resolved synchronously at submission; tickets redeem
/// instantly.  The engine itself uses interior mutability, so the backend is
/// freely shareable across threads.
pub struct EmbeddedBackend {
    engine: Engine,
    tickets: ReadyTickets,
    examined: AtomicU64,
}

impl EmbeddedBackend {
    fn new(engine: Engine) -> Self {
        EmbeddedBackend {
            engine,
            tickets: ReadyTickets::new(),
            examined: AtomicU64::new(0),
        }
    }

    /// The underlying engine, for inspection the trait does not cover
    /// (directory contents, pool-manager manipulation in experiments).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl ResourceManager for EmbeddedBackend {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        let outcome = self.engine.submit(&query);
        if let Ok(allocations) = &outcome {
            let examined: u64 = allocations.iter().map(|a| a.examined as u64).sum();
            self.examined.fetch_add(examined, Ordering::Relaxed);
        }
        Ok(self.tickets.issue(outcome))
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        self.tickets.take(ticket)
    }

    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        // Eager backend: every issued ticket is already resolved.
        Some(self.tickets.take(ticket))
    }

    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        self.engine.release(allocation)
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snapshot = snapshot_from_engine(
            self.engine.stats(),
            self.examined.load(Ordering::Relaxed),
            self.tickets.len(),
        );
        snapshot.shard_contention = self.engine.directory().contention();
        snapshot
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        Ok(())
    }
}

/// The threaded [`LivePipeline`] behind the unified surface.
///
/// Submission launches the query into the pipeline and returns immediately;
/// up to `window` tickets are in flight at once and further submissions
/// block until one is redeemed — the backpressure that keeps a fast client
/// from flooding the stage channels.
pub struct LiveBackend {
    pipeline: LivePipeline,
    brand: u64,
    next: AtomicU64,
    /// Outstanding tickets, sharded by ticket id.  Each entry remembers
    /// the window lane its permit came from so settling releases the
    /// permit to the originating lane.
    pending: crate::shard::ShardedMap<(usize, crossbeam::channel::Receiver<QueryOutcome>)>,
    window: Window,
    batch_deadline: Duration,
    examined: AtomicU64,
}

impl LiveBackend {
    fn new(pipeline: LivePipeline, window: usize, batch_deadline: Duration, shards: usize) -> Self {
        LiveBackend {
            pipeline,
            brand: next_backend_brand(),
            next: AtomicU64::new(0),
            pending: crate::shard::ShardedMap::new(shards),
            window: Window::new(window, shards),
            batch_deadline,
            examined: AtomicU64::new(0),
        }
    }

    /// One deadline-bounded batch submission step: waits for a window
    /// permit until `deadline`, then launches the query.
    fn submit_until(&self, query: Query, deadline: Instant) -> Result<Ticket, AllocationError> {
        let Some(lane) = self.window.acquire_deadline(deadline) else {
            return Err(AllocationError::Internal(format!(
                "batch backpressure deadline of {:?} elapsed with the in-flight \
                 window of {} still full; redeem outstanding tickets, raise \
                 PipelineBuilder::window, or raise PipelineBuilder::batch_deadline",
                self.batch_deadline, self.window.capacity
            )));
        };
        match self.pipeline.submit_async(query) {
            Ok(rx) => {
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                self.pending.insert(id, (lane, rx));
                Ok(Ticket {
                    brand: self.brand,
                    id,
                })
            }
            Err(e) => {
                self.window.release(lane);
                Err(e)
            }
        }
    }

    /// The underlying live pipeline, for inspection the trait does not
    /// cover (directory contents).
    pub fn pipeline(&self) -> &LivePipeline {
        &self.pipeline
    }

    fn settle(&self, outcome: &QueryOutcome, lane: usize) {
        if let Ok(allocations) = outcome {
            let examined: u64 = allocations.iter().map(|a| a.examined as u64).sum();
            self.examined.fetch_add(examined, Ordering::Relaxed);
        }
        self.window.release(lane);
    }
}

impl ResourceManager for LiveBackend {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        let lane = self.window.acquire();
        match self.pipeline.submit_async(query) {
            Ok(rx) => {
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                self.pending.insert(id, (lane, rx));
                Ok(Ticket {
                    brand: self.brand,
                    id,
                })
            }
            Err(e) => {
                self.window.release(lane);
                Err(e)
            }
        }
    }

    /// Deadline-bounded backpressure: a batch larger than the free window
    /// waits up to [`PipelineBuilder::batch_deadline`] for permits freed by
    /// concurrent redeemers instead of being rejected outright (and instead
    /// of blocking a single-threaded client forever mid-batch, holding
    /// tickets it can never redeem).  On deadline expiry the tickets
    /// already issued for the batch are settled internally and their
    /// allocations released — no window permit or machine claim leaks —
    /// and the error reports the window state.  Federated daemons forward
    /// their batches here unchanged, so both daemon modes share these
    /// semantics.
    fn submit_batch(&self, queries: Vec<Query>) -> Result<Vec<Ticket>, AllocationError> {
        let deadline = Instant::now() + self.batch_deadline;
        let mut tickets = Vec::with_capacity(queries.len());
        for query in queries {
            match self.submit_until(query, deadline) {
                Ok(ticket) => tickets.push(ticket),
                Err(e) => {
                    for ticket in tickets {
                        if let Ok(allocations) = self.wait(ticket) {
                            for a in &allocations {
                                let _ = self.release(a);
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(tickets)
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        if ticket.brand != self.brand {
            return Err(AllocationError::UnknownTicket);
        }
        let (lane, rx) = self
            .pending
            .remove(ticket.id)
            .ok_or(AllocationError::UnknownTicket)?;
        let outcome = rx.recv().unwrap_or_else(|_| {
            Err(AllocationError::Internal(
                "pipeline dropped the reply".to_string(),
            ))
        });
        self.settle(&outcome, lane);
        outcome
    }

    /// Blocks on the reply channel with a timeout instead of the default
    /// poll loop, so a deadline-bounded wait parks the thread at zero CPU —
    /// this is the path a `ypd` daemon hits for every remote
    /// wait-with-deadline.  Redemption is one-at-a-time: while one thread
    /// waits on a ticket, a concurrent redeemer of the *same* ticket sees
    /// `UnknownTicket`, exactly as it would after [`wait`](Self::wait)
    /// claimed it.
    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        use crossbeam::channel::RecvTimeoutError;
        if ticket.brand != self.brand {
            return Some(Err(AllocationError::UnknownTicket));
        }
        let (lane, rx) = match self.pending.remove(ticket.id) {
            Some(entry) => entry,
            None => return Some(Err(AllocationError::UnknownTicket)),
        };
        match rx.recv_timeout(timeout) {
            Ok(outcome) => {
                self.settle(&outcome, lane);
                Some(outcome)
            }
            Err(RecvTimeoutError::Timeout) => {
                // Deadline elapsed: the ticket stays redeemable.
                self.pending.insert(ticket.id, (lane, rx));
                None
            }
            Err(RecvTimeoutError::Disconnected) => {
                let outcome = Err(AllocationError::Internal(
                    "pipeline dropped the reply".to_string(),
                ));
                self.settle(&outcome, lane);
                Some(outcome)
            }
        }
    }

    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        use crossbeam::channel::TryRecvError;
        if ticket.brand != self.brand {
            return Some(Err(AllocationError::UnknownTicket));
        }
        // One shard guard covers the get + try_recv + remove, so a
        // concurrent redeemer of the same ticket sees `UnknownTicket`
        // rather than a torn entry; other tickets' shards stay free.
        let mut pending = crate::shard::lock_shard(&self.pending, ticket.id);
        let rx = match pending.get(&ticket.id) {
            Some((_, rx)) => rx,
            None => return Some(Err(AllocationError::UnknownTicket)),
        };
        let outcome = match rx.try_recv() {
            Ok(outcome) => outcome,
            Err(TryRecvError::Empty) => return None,
            Err(TryRecvError::Disconnected) => Err(AllocationError::Internal(
                "pipeline dropped the reply".to_string(),
            )),
        };
        let (lane, _rx) = pending
            .remove(&ticket.id)
            .expect("entry present under guard");
        drop(pending);
        self.settle(&outcome, lane);
        Some(outcome)
    }

    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        self.pipeline.release(allocation)
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snapshot = snapshot_from_engine(
            self.pipeline.stats(),
            self.examined.load(Ordering::Relaxed),
            self.pending.len(),
        );
        snapshot.shard_contention = self
            .window
            .contention()
            .saturating_add(self.pipeline.directory().contention());
        snapshot
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        // Queued submissions are processed before the shutdown marker, so
        // outstanding tickets remain redeemable afterwards.
        self.pipeline.shutdown()
    }
}

/// How a centralized baseline dispatches one basic query.  Implemented by
/// both baseline architectures so [`BaselineBackend`] can wrap either.
pub trait BaselineDispatcher: Send {
    /// Dispatches a basic query, returning the chosen machine and the
    /// number of machine records examined, or `None` when nothing fits.
    fn dispatch(&mut self, basic: &BasicQuery) -> Option<(MachineId, usize)>;
    /// Returns a previously dispatched machine to the free set.
    fn finish(&mut self, machine: MachineId);
    /// Total machine records examined over the baseline's lifetime.
    fn records_examined(&self) -> u64;
}

impl BaselineDispatcher for CentralScheduler {
    fn dispatch(&mut self, basic: &BasicQuery) -> Option<(MachineId, usize)> {
        // `try_submit` rather than `submit`: the unified API reports the
        // failure to its caller, so the job must not also pile up inside
        // the scheduler's queues where nothing would ever drain it.
        self.try_submit(basic)
    }

    fn finish(&mut self, machine: MachineId) {
        CentralScheduler::finish(self, machine);
    }

    fn records_examined(&self) -> u64 {
        self.scanned_total()
    }
}

impl BaselineDispatcher for Matchmaker {
    fn dispatch(&mut self, basic: &BasicQuery) -> Option<(MachineId, usize)> {
        let outcome = self.negotiate(basic);
        outcome.machine.map(|m| (m, outcome.evaluated))
    }

    fn finish(&mut self, machine: MachineId) {
        self.release(machine);
    }

    fn records_examined(&self) -> u64 {
        self.evaluated_total()
    }
}

/// A centralized baseline behind the unified surface.
///
/// Queries are decomposed exactly as the pipeline's query managers would,
/// each basic query is dispatched centrally, and the outcomes are
/// re-integrated under the configured [`ReintegrationPolicy`], so the
/// baselines stay decision-comparable with the pipeline while concentrating
/// all work in one component.
pub struct BaselineBackend<D: BaselineDispatcher> {
    dispatcher: Mutex<D>,
    db: SharedDatabase,
    decompose_limit: usize,
    reintegration: ReintegrationPolicy,
    tickets: ReadyTickets,
    outstanding: Mutex<HashMap<String, MachineId>>,
    requests: AtomicU64,
    fragments: AtomicU64,
    allocations: AtomicU64,
    failures: AtomicU64,
    releases: AtomicU64,
    nonce: AtomicU64,
}

/// The PBS/SGE-style centralized multi-queue scheduler baseline.
pub type CentralQueueBackend = BaselineBackend<CentralScheduler>;

/// The Condor-style centralized matchmaker baseline.
pub type MatchmakerBackend = BaselineBackend<Matchmaker>;

impl<D: BaselineDispatcher> BaselineBackend<D> {
    fn new(
        dispatcher: D,
        db: SharedDatabase,
        decompose_limit: usize,
        reintegration: ReintegrationPolicy,
    ) -> Self {
        BaselineBackend {
            dispatcher: Mutex::new(dispatcher),
            db,
            decompose_limit,
            reintegration,
            tickets: ReadyTickets::new(),
            outstanding: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            fragments: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            nonce: AtomicU64::new(0),
        }
    }

    fn make_allocation(
        &self,
        machine: MachineId,
        examined: usize,
        basic: &BasicQuery,
    ) -> Allocation {
        let (machine_name, execution_port, mount_port) = {
            let guard = self.db.read();
            let record = guard.get(machine);
            (
                record.map(|m| m.name.clone()).unwrap_or_default(),
                record.map(|m| m.execution_unit_port).unwrap_or_default(),
                record.map(|m| m.pvfs_mount_port).unwrap_or_default(),
            )
        };
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let request = RequestId(nonce);
        let access_key = SessionKey::derive(request, 0, nonce);
        self.outstanding
            .lock()
            .insert(access_key.0.clone(), machine);
        Allocation {
            request,
            machine,
            machine_name,
            execution_port,
            mount_port,
            shadow_uid: None,
            access_key,
            // The pool the pipeline *would* have aggregated for this query;
            // keeps placement decisions comparable across architectures.
            pool: PoolName::from_query(basic).full(),
            pool_instance: 0,
            examined,
        }
    }

    fn execute(&self, query: &Query) -> QueryOutcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let basics = query.decompose(self.decompose_limit);
        let mut successes = Vec::new();
        let mut first_error = None;
        for basic in &basics {
            self.fragments.fetch_add(1, Ordering::Relaxed);
            let dispatched = self.dispatcher.lock().dispatch(basic);
            match dispatched {
                Some((machine, examined)) => {
                    self.allocations.fetch_add(1, Ordering::Relaxed);
                    successes.push(self.make_allocation(machine, examined, basic));
                }
                None => {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    first_error.get_or_insert(AllocationError::NoneAvailable);
                }
            }
        }
        if successes.is_empty() {
            return Err(first_error.unwrap_or(AllocationError::NoSuchResources));
        }
        match self.reintegration {
            ReintegrationPolicy::All => Ok(successes),
            ReintegrationPolicy::FirstMatch => {
                // Mirror the pipeline: keep the first match, hand the
                // surplus straight back (counted as releases, like the
                // engine's surplus path).
                let keep = successes.remove(0);
                for extra in successes {
                    let _ = self.release_outstanding(&extra);
                    self.allocations.fetch_sub(1, Ordering::Relaxed);
                }
                Ok(vec![keep])
            }
        }
    }

    fn release_outstanding(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        let machine = self
            .outstanding
            .lock()
            .remove(&allocation.access_key.0)
            .ok_or(AllocationError::UnknownAllocation)?;
        self.dispatcher.lock().finish(machine);
        self.releases.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl<D: BaselineDispatcher> ResourceManager for BaselineBackend<D> {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        let outcome = self.execute(&query);
        Ok(self.tickets.issue(outcome))
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        self.tickets.take(ticket)
    }

    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        Some(self.tickets.take(ticket))
    }

    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        self.release_outstanding(allocation)
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            delegations: 0,
            forwards: 0,
            delegations_out: 0,
            delegations_in: 0,
            releases: self.releases.load(Ordering::Relaxed),
            records_examined: self.dispatcher.lock().records_examined(),
            in_flight: self.tickets.len(),
            gossip_deltas_in: 0,
            gossip_deltas_out: 0,
            route_hits: 0,
            route_misses: 0,
            peer_redials: 0,
            // Centralized baselines have one big lock by design — the
            // sharding counters are the pipeline's to report.
            shard_contention: 0,
            frames_batched: 0,
            writes_coalesced: 0,
        }
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        Ok(())
    }
}

/// Fluent construction of any backend from one configuration.
///
/// Give the builder a resource database (or federated domains) and any
/// pipeline settings, then `build` the backend the deployment needs —
/// every test, example and bench in the workspace goes through here.
#[derive(Clone)]
pub struct PipelineBuilder {
    config: PipelineConfig,
    window: usize,
    batch_deadline: Duration,
    database: Option<SharedDatabase>,
    domains: Vec<(String, SharedDatabase)>,
    server: ServerConfig,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder {
    /// A builder with the default [`PipelineConfig`], an in-flight window
    /// of 32 and the default [`ServerConfig`] (reactor sessions).
    pub fn new() -> Self {
        PipelineBuilder {
            config: PipelineConfig::default(),
            window: 32,
            batch_deadline: Duration::from_secs(30),
            database: None,
            domains: Vec::new(),
            server: ServerConfig::default(),
        }
    }

    /// The resource database of a single-domain deployment.
    pub fn database(mut self, db: SharedDatabase) -> Self {
        self.database = Some(db);
        self
    }

    /// Federated deployment: one pool manager per administrative domain,
    /// each with its own resource database.
    pub fn federated(mut self, domains: Vec<(String, SharedDatabase)>) -> Self {
        self.domains = domains;
        self
    }

    /// Replaces the whole pipeline configuration at once.
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of query-manager stages.
    pub fn query_managers(mut self, n: usize) -> Self {
        self.config.query_managers = n;
        self
    }

    /// Number of pool-manager stages (single-domain deployments).
    pub fn pool_managers(mut self, n: usize) -> Self {
        self.config.pool_managers = n;
        self
    }

    /// Scheduling objective used by created pools.
    pub fn objective(mut self, objective: SchedulingObjective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Pool-instance selection policy inside pool managers.
    pub fn instance_selection(mut self, selection: InstanceSelection) -> Self {
        self.config.instance_selection = selection;
        self
    }

    /// Pool-manager selection policy inside query managers.
    pub fn pool_manager_selection(mut self, selection: PoolManagerSelection) -> Self {
        self.config.pool_manager_selection = selection;
        self
    }

    /// Re-integration policy for composite queries.
    pub fn reintegration(mut self, policy: ReintegrationPolicy) -> Self {
        self.config.reintegration = policy;
        self
    }

    /// Maximum number of basic queries a composite query may expand into.
    pub fn decompose_limit(mut self, limit: usize) -> Self {
        self.config.decompose_limit = limit;
        self
    }

    /// Delegation time-to-live.
    pub fn ttl(mut self, ttl: u32) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// Hour of virtual day used for time-of-day usage policies.
    pub fn hour_of_day(mut self, hour: u8) -> Self {
        self.config.hour_of_day = hour;
        self
    }

    /// RNG seed for all stage-local randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Maximum tickets in flight on the live backend before `submit`
    /// blocks (backpressure).  Clamped to at least 1.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Shard count for the daemon's hot state: directory shards,
    /// admission-window permit lanes and pending-ticket shards (clamped
    /// to at least 1; `1` degenerates to the old single-lock behaviour).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// How long a live-backend batch submission may wait for in-flight
    /// window permits before giving up (deadline-bounded backpressure;
    /// default 30 s).  Both the plain and the federated daemon apply this
    /// bound to over-window `SubmitBatch` requests.
    pub fn batch_deadline(mut self, deadline: Duration) -> Self {
        self.batch_deadline = deadline;
        self
    }

    /// How a served daemon drives session I/O: the event-driven reactor
    /// (default) or the legacy thread per session.  Only affects
    /// [`PipelineBuilder::serve`] / [`PipelineBuilder::serve_federated`].
    pub fn session_mode(mut self, mode: SessionMode) -> Self {
        self.server.mode = mode;
        self
    }

    /// Reactor I/O threads for a served daemon (clamped to at least 1).
    pub fn reactor_io_threads(mut self, n: usize) -> Self {
        self.server.io_threads = n;
        self
    }

    /// Worker threads per blocking lane (submit / redeem) for a served
    /// daemon in reactor mode (clamped to at least 1 each).
    pub fn reactor_workers(mut self, n: usize) -> Self {
        self.server.workers = n;
        self
    }

    /// Readiness poller the reactor's I/O threads use ([`PollerKind::Auto`]
    /// picks epoll on Linux, `poll(2)` elsewhere).
    pub fn poller(mut self, kind: PollerKind) -> Self {
        self.server.poller = kind;
        self
    }

    /// Replaces the whole server-side configuration at once.
    pub fn server_config(mut self, config: ServerConfig) -> Self {
        self.server = config;
        self
    }

    fn take_domains(self) -> Result<(PipelineConfig, usize, DomainList), AllocationError> {
        if !self.domains.is_empty() {
            return Ok((self.config, self.window, self.domains));
        }
        match self.database {
            Some(db) => {
                let domains = (0..self.config.pool_managers.max(1))
                    .map(|i| (format!("pm-{i}"), db.clone()))
                    .collect();
                Ok((self.config, self.window, domains))
            }
            None => Err(AllocationError::Internal(
                "PipelineBuilder needs a database or federated domains".to_string(),
            )),
        }
    }

    /// The database a centralized baseline sees.  Federated domains are
    /// merged into one table by copying every record — a centralized
    /// scheduler has, by definition, global knowledge (and no longer shares
    /// load state with the per-domain databases).
    fn take_merged_database(self) -> Result<(PipelineConfig, SharedDatabase), AllocationError> {
        if let Some(db) = self.database {
            return Ok((self.config, db));
        }
        match self.domains.len() {
            0 => Err(AllocationError::Internal(
                "PipelineBuilder needs a database or federated domains".to_string(),
            )),
            1 => {
                let (_, db) = self.domains.into_iter().next().expect("one domain");
                Ok((self.config, db))
            }
            _ => {
                let mut merged = ResourceDatabase::new();
                for (_, db) in &self.domains {
                    for machine in db.read().iter() {
                        merged.register(machine.clone());
                    }
                }
                Ok((self.config, merged.into_shared()))
            }
        }
    }

    /// Builds the embedded backend.
    pub fn build_embedded(self) -> Result<EmbeddedBackend, AllocationError> {
        let (config, _, domains) = self.take_domains()?;
        Ok(EmbeddedBackend::new(Engine::federated(config, domains)))
    }

    /// Builds the live (threaded) backend.
    pub fn build_live(self) -> Result<LiveBackend, AllocationError> {
        let batch_deadline = self.batch_deadline;
        let (config, window, domains) = self.take_domains()?;
        let shards = config.shards;
        Ok(LiveBackend::new(
            LivePipeline::start_federated(config, domains),
            window,
            batch_deadline,
            shards,
        ))
    }

    /// Builds the centralized multi-queue scheduler baseline.
    pub fn build_central_queue(self) -> Result<CentralQueueBackend, AllocationError> {
        let (config, db) = self.take_merged_database()?;
        Ok(BaselineBackend::new(
            CentralScheduler::new(db.clone()),
            db,
            config.decompose_limit,
            config.reintegration,
        ))
    }

    /// Builds the centralized matchmaker baseline.
    pub fn build_matchmaker(self) -> Result<MatchmakerBackend, AllocationError> {
        let (config, db) = self.take_merged_database()?;
        Ok(BaselineBackend::new(
            Matchmaker::new(db.clone()),
            db,
            config.decompose_limit,
            config.reintegration,
        ))
    }

    /// Builds any backend behind the unified trait — the entry point the
    /// cross-architecture tests and benches use.
    pub fn build(self, kind: BackendKind) -> Result<Box<dyn ResourceManager>, AllocationError> {
        Ok(match kind {
            BackendKind::Embedded => Box::new(self.build_embedded()?),
            BackendKind::Live => Box::new(self.build_live()?),
            BackendKind::CentralQueue => Box::new(self.build_central_queue()?),
            BackendKind::Matchmaker => Box::new(self.build_matchmaker()?),
        })
    }

    /// Builds the configured backend and hosts it behind the wire protocol
    /// at `addr` (the `ypd` daemon embedded in this process).  `addr` with
    /// port 0 binds an ephemeral port; read it back with
    /// [`ServerHandle::local_addr`].
    pub fn serve(
        self,
        addr: &StageAddress,
        kind: BackendKind,
    ) -> Result<ServerHandle, AllocationError> {
        let server = self.server;
        crate::remote::serve_with(self.build(kind)?, addr, server)
    }

    /// Builds the configured backend wrapped in the wide-area federation
    /// layer: queries the local backend cannot satisfy are delegated to
    /// the peer daemons in `federation` with a TTL and visited-domain
    /// list.  The pipeline backends advertise their intra-domain pool
    /// names to peers; the centralized baselines have no directory and
    /// advertise nothing.
    pub fn build_federated(
        self,
        kind: BackendKind,
        federation: crate::federation::FederationConfig,
    ) -> Result<std::sync::Arc<crate::federation::FederatedBackend>, AllocationError> {
        let (inner, directory): (Box<dyn ResourceManager>, Option<crate::SharedDirectory>) =
            match kind {
                BackendKind::Embedded => {
                    let backend = self.build_embedded()?;
                    let directory = backend.engine().directory().clone();
                    (Box::new(backend), Some(directory))
                }
                BackendKind::Live => {
                    let backend = self.build_live()?;
                    let directory = backend.pipeline().directory().clone();
                    (Box::new(backend), Some(directory))
                }
                BackendKind::CentralQueue | BackendKind::Matchmaker => (self.build(kind)?, None),
            };
        Ok(std::sync::Arc::new(
            crate::federation::FederatedBackend::new(inner, federation, directory),
        ))
    }

    /// [`PipelineBuilder::serve`] for a federated daemon: hosts the
    /// backend behind the wire protocol *and* answers the inter-daemon
    /// `Delegate` / `SyncPools` frames peers send.  Returns the shared
    /// backend alongside the server handle for inspection.
    pub fn serve_federated(
        self,
        addr: &StageAddress,
        kind: BackendKind,
        federation: crate::federation::FederationConfig,
    ) -> Result<
        (
            ServerHandle,
            std::sync::Arc<crate::federation::FederatedBackend>,
        ),
        AllocationError,
    > {
        let server = self.server;
        let backend = self.build_federated(kind, federation)?;
        let handle = crate::remote::serve_federated_with(backend.clone(), addr, server)?;
        Ok((handle, backend))
    }

    /// Connects to a `ypd` daemon at `addr` — a fifth deployment behind the
    /// same trait, with the pipeline stages on the far side of a network
    /// hop.  Addresses parse from strings (`"host:port".parse()`), so this
    /// composes directly with CLI arguments and environment variables.
    pub fn remote(addr: &StageAddress) -> Result<RemoteBackend, AllocationError> {
        RemoteBackend::connect(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, SyntheticFleet};

    fn fleet_db(n: usize, seed: u64) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), seed)
            .generate()
            .into_shared()
    }

    fn builder(n: usize, seed: u64) -> PipelineBuilder {
        PipelineBuilder::new().database(fleet_db(n, seed))
    }

    fn paper_text() -> String {
        Query::paper_example().to_string()
    }

    #[test]
    fn every_backend_serves_the_same_query_through_the_trait() {
        for kind in BackendKind::ALL {
            let manager = builder(300, 1).build(kind).unwrap();
            let ticket = manager.submit_text(&paper_text()).unwrap();
            let allocations = manager.wait(ticket).unwrap();
            assert_eq!(allocations.len(), 1, "{kind}");
            assert!(allocations[0].machine_name.contains("sun"), "{kind}");
            manager.release(&allocations[0]).unwrap();
            let stats = manager.stats();
            assert_eq!(stats.requests, 1, "{kind}");
            assert_eq!(stats.allocations, 1, "{kind}");
            assert_eq!(stats.releases, 1, "{kind}");
            assert!(stats.records_examined > 0, "{kind}");
            assert_eq!(stats.in_flight, 0, "{kind}");
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn tickets_redeem_exactly_once() {
        for kind in BackendKind::ALL {
            let manager = builder(200, 2).build(kind).unwrap();
            let ticket = manager.submit_text(&paper_text()).unwrap();
            assert!(manager.wait(ticket).is_ok(), "{kind}");
            assert_eq!(
                manager.wait(ticket).unwrap_err(),
                AllocationError::UnknownTicket,
                "{kind}"
            );
            assert_eq!(
                manager.try_poll(ticket),
                Some(Err(AllocationError::UnknownTicket)),
                "{kind}"
            );
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn try_poll_resolves_eventually() {
        for kind in BackendKind::ALL {
            let manager = builder(200, 3).build(kind).unwrap();
            let ticket = manager.submit_text(&paper_text()).unwrap();
            let outcome = loop {
                if let Some(outcome) = manager.try_poll(ticket) {
                    break outcome;
                }
                std::thread::yield_now();
            };
            let allocations = outcome.unwrap();
            manager.release(&allocations[0]).unwrap();
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn submit_batch_issues_one_ticket_per_query() {
        let manager = builder(400, 4).build(BackendKind::Live).unwrap();
        let queries = vec![Query::paper_example(); 5];
        let tickets = manager.submit_batch(queries).unwrap();
        assert_eq!(tickets.len(), 5);
        assert!(manager.stats().in_flight >= 1);
        for ticket in tickets {
            let allocations = manager.wait(ticket).unwrap();
            manager.release(&allocations[0]).unwrap();
        }
        assert_eq!(manager.stats().allocations, 5);
        manager.shutdown().unwrap();
    }

    #[test]
    fn live_window_applies_backpressure() {
        let manager = std::sync::Arc::new(builder(300, 5).window(2).build_live().unwrap());
        let first = manager.submit_text(&paper_text()).unwrap();
        let second = manager.submit_text(&paper_text()).unwrap();
        // The window is full: a third submission blocks until a ticket is
        // redeemed.
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let blocked = {
            let manager = manager.clone();
            std::thread::spawn(move || {
                started_tx.send(()).unwrap();
                manager.submit_text(&Query::paper_example().to_string())
            })
        };
        started_rx.recv().unwrap();
        let allocations = manager.wait(first).unwrap();
        manager.release(&allocations[0]).unwrap();
        let third = blocked.join().unwrap().unwrap();
        for ticket in [second, third] {
            let allocations = manager.wait(ticket).unwrap();
            manager.release(&allocations[0]).unwrap();
        }
        manager.shutdown().unwrap();
    }

    #[test]
    fn wait_deadline_resolves_or_preserves_the_ticket() {
        for kind in BackendKind::ALL {
            let manager = builder(300, 26).build(kind).unwrap();
            let ticket = manager.submit_text(&paper_text()).unwrap();
            // A zero deadline may or may not catch the outcome on the live
            // backend; eager backends resolve instantly.  On a timeout the
            // ticket must remain redeemable.
            let outcome = match manager.wait_deadline(ticket, Duration::ZERO) {
                Some(outcome) => outcome,
                None => manager
                    .wait_deadline(ticket, Duration::from_secs(30))
                    .expect("resolves within the deadline"),
            };
            let allocations = outcome.unwrap();
            manager.release(&allocations[0]).unwrap();
            // The ticket is spent now.
            assert_eq!(
                manager.wait_deadline(ticket, Duration::from_millis(1)),
                Some(Err(AllocationError::UnknownTicket)),
                "{kind}"
            );
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn tickets_are_branded_per_backend_instance() {
        // Redeeming a ticket on a different manager than the one that
        // issued it is an error, never another query's outcome.
        let first = builder(200, 20).build(BackendKind::Embedded).unwrap();
        let second = builder(200, 21).build(BackendKind::Embedded).unwrap();
        let ticket = first.submit_text(&paper_text()).unwrap();
        second.submit_text(&paper_text()).unwrap();
        assert_eq!(
            second.wait(ticket).unwrap_err(),
            AllocationError::UnknownTicket
        );
        assert!(first.wait(ticket).is_ok(), "the issuer still honours it");
    }

    #[test]
    fn oversized_live_batches_fail_after_the_deadline_not_deadlock() {
        let manager = builder(300, 22)
            .window(2)
            .batch_deadline(Duration::from_millis(100))
            .build_live()
            .unwrap();
        // No concurrent redeemer: the over-window batch waits out the
        // deadline, settles what it issued, and reports the window state.
        let started = Instant::now();
        let err = manager
            .submit_batch(vec![Query::paper_example(); 3])
            .unwrap_err();
        assert!(matches!(err, AllocationError::Internal(_)));
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "the batch must backpressure until the deadline, not reject outright"
        );
        // Nothing leaked: a batch that fits still goes through afterwards.
        let tickets = manager
            .submit_batch(vec![Query::paper_example(); 2])
            .unwrap();
        for ticket in tickets {
            let allocations = manager.wait(ticket).unwrap();
            manager.release(&allocations[0]).unwrap();
        }
        manager.shutdown().unwrap();
    }

    #[test]
    fn oversized_live_batch_completes_when_a_redeemer_frees_the_window() {
        let manager = std::sync::Arc::new(
            builder(300, 26)
                .window(2)
                .batch_deadline(Duration::from_secs(10))
                .build_live()
                .unwrap(),
        );
        // Fill the window, then submit an over-window batch while another
        // thread redeems the blockers: the batch must ride the freed
        // permits instead of failing.
        let blockers = manager
            .submit_batch(vec![Query::paper_example(); 2])
            .unwrap();
        let redeemer = {
            let manager = manager.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                for ticket in blockers {
                    let allocations = manager.wait(ticket).unwrap();
                    manager.release(&allocations[0]).unwrap();
                }
            })
        };
        let tickets = manager
            .submit_batch(vec![Query::paper_example(); 2])
            .unwrap();
        redeemer.join().unwrap();
        for ticket in tickets {
            let allocations = manager.wait(ticket).unwrap();
            manager.release(&allocations[0]).unwrap();
        }
        manager.shutdown().unwrap();
    }

    #[test]
    fn central_queue_failures_do_not_accumulate_inside_the_scheduler() {
        let manager = builder(100, 23).build(BackendKind::CentralQueue).unwrap();
        for _ in 0..5 {
            assert!(manager
                .submit_text_wait("punch.rsrc.arch = cray\n")
                .is_err());
        }
        let stats = manager.stats();
        assert_eq!(stats.failures, 5);
        // A matching query still succeeds afterwards — nothing is wedged.
        let allocations = manager.submit_text_wait(&paper_text()).unwrap();
        manager.release(&allocations[0]).unwrap();
    }

    #[test]
    fn live_tickets_survive_shutdown() {
        let manager = builder(200, 24).build_live().unwrap();
        let ticket = manager.submit_text(&paper_text()).unwrap();
        manager.shutdown().unwrap();
        let allocations = manager.wait(ticket).unwrap();
        assert_eq!(allocations.len(), 1);
    }

    #[test]
    fn baselines_report_errors_for_impossible_queries() {
        for kind in [BackendKind::CentralQueue, BackendKind::Matchmaker] {
            let manager = builder(100, 6).build(kind).unwrap();
            let outcome = manager.submit_text_wait("punch.rsrc.arch = cray\n");
            assert!(outcome.is_err(), "{kind}");
            assert_eq!(manager.stats().failures, 1, "{kind}");
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn baselines_honour_the_reintegration_policy() {
        let db = fleet_db(400, 25);
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .reintegration(ReintegrationPolicy::FirstMatch)
            .build(BackendKind::Matchmaker)
            .unwrap();
        let allocations = manager
            .submit_text_wait("punch.rsrc.arch = sun | hp\n")
            .unwrap();
        assert_eq!(allocations.len(), 1, "FirstMatch keeps one allocation");
        // The surplus fragment's machine was handed straight back.
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 1);
        let stats = manager.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.releases, 1);
    }

    #[test]
    fn baseline_double_release_is_rejected() {
        let manager = builder(100, 7).build(BackendKind::Matchmaker).unwrap();
        let allocations = manager.submit_text_wait(&paper_text()).unwrap();
        manager.release(&allocations[0]).unwrap();
        assert_eq!(
            manager.release(&allocations[0]).unwrap_err(),
            AllocationError::UnknownAllocation
        );
    }

    #[test]
    fn federated_domains_build_every_backend() {
        let domains = || {
            vec![
                (
                    "purdue".to_string(),
                    SyntheticFleet::new(FleetSpec::homogeneous(40, "sun", 256), 8)
                        .generate()
                        .into_shared(),
                ),
                (
                    "upc".to_string(),
                    SyntheticFleet::new(FleetSpec::homogeneous(40, "hp", 512), 9)
                        .generate()
                        .into_shared(),
                ),
            ]
        };
        for kind in BackendKind::ALL {
            let manager = PipelineBuilder::new()
                .federated(domains())
                .build(kind)
                .unwrap();
            let hp = manager.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
            assert!(hp[0].machine_name.contains("hp"), "{kind}");
            manager.release(&hp[0]).unwrap();
            manager.shutdown().unwrap();
        }
    }

    #[test]
    fn builder_without_database_is_an_error() {
        assert!(PipelineBuilder::new().build(BackendKind::Embedded).is_err());
        assert!(PipelineBuilder::new()
            .build(BackendKind::Matchmaker)
            .is_err());
    }

    #[test]
    fn trait_objects_share_across_threads() {
        let manager: std::sync::Arc<dyn ResourceManager> = std::sync::Arc::from(
            builder(300, 10)
                .query_managers(2)
                .build(BackendKind::Live)
                .unwrap(),
        );
        let mut joins = Vec::new();
        for _ in 0..4 {
            let manager = manager.clone();
            joins.push(std::thread::spawn(move || {
                let allocations = manager.submit_wait(&Query::paper_example()).unwrap();
                manager.release(&allocations[0]).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(manager.stats().allocations, 4);
        manager.shutdown().unwrap();
    }
}
