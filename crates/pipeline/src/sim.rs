//! Simulated deployment for the controlled experiments.
//!
//! The paper's evaluation (Section 7) measures the response time of the
//! ActYP prototype under synthetic workloads: closed-loop clients that
//! continuously send queries to a service whose components run on a
//! 12-processor Alpha server, in a LAN configuration and in one WAN
//! configuration (clients at Purdue, service at UPC Barcelona).
//!
//! This module reproduces those experiments on the discrete-event kernel.
//! The *logic* — pool naming, machine matching, the linear scan of the
//! scheduling process — is executed by the real pipeline code
//! ([`crate::resource_pool`], [`crate::scheduler`]); only *time* is
//! simulated: each stage is a FCFS server with a configurable service cost,
//! the pool scan cost is proportional to the number of cache entries the
//! real scheduler actually examined, and messages between stages pay a
//! latency drawn from the LAN/WAN network model.

use actyp_grid::{FleetSpec, MachineId, SharedDatabase, SyntheticFleet};
use actyp_query::{BasicQuery, Constraint, PoolName, Query, QueryKey};
use actyp_simnet::{
    EventQueue, FcfsServer, LinkProfile, NetworkModel, Rng, SampleSet, SimDuration, SimTime,
};

use crate::message::RequestId;
use crate::resource_pool::ResourcePool;
use crate::scheduler::{ReplicaBias, SchedulingObjective};

/// Per-operation service costs of the pipeline stages.
///
/// The defaults are calibrated so that a single 3,200-machine pool saturates
/// at response times around a second with a few tens of closed-loop clients,
/// matching the order of magnitude of the paper's figures.  Absolute values
/// are ours (our "hardware" is a cost model, not an Alpha server); the
/// *shapes* of the curves are what the reproduction preserves.
#[derive(Debug, Clone)]
pub struct SimCosts {
    /// Query-manager work per query (translation, decomposition, routing).
    pub query_manager: SimDuration,
    /// Pool-manager work per query (mapping, directory lookup, selection).
    pub pool_manager: SimDuration,
    /// Fixed part of serving an allocation inside a pool.
    pub pool_base: SimDuration,
    /// Cost per cache entry examined by the scheduling process.
    pub per_machine: SimDuration,
    /// Cost of assembling and sending the reply.
    pub reply: SimDuration,
}

impl Default for SimCosts {
    fn default() -> Self {
        SimCosts {
            query_manager: SimDuration::from_micros(350),
            pool_manager: SimDuration::from_micros(250),
            pool_base: SimDuration::from_micros(400),
            per_machine: SimDuration::from_micros(6),
            reply: SimDuration::from_micros(150),
        }
    }
}

/// How the machines are organised into resource pools for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTopology {
    /// Machines uniformly distributed across `pools` pools; each query is
    /// striped to a random pool (Figures 4 and 5).
    Striped {
        /// Number of pools.
        pools: usize,
    },
    /// A single pool holding every machine (the baseline of Figure 6).
    SinglePool,
    /// One logical pool split into `parts` disjoint parts that are searched
    /// concurrently and whose results are aggregated (Figure 7).
    Split {
        /// Number of parts.
        parts: usize,
    },
    /// `replicas` instances sharing the full machine set, with
    /// instance-specific bias; each query goes to one replica (Figure 8).
    Replicated {
        /// Number of replicated instances.
        replicas: usize,
    },
}

/// Configuration of one simulated experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of machines in the resource database.
    pub machines: usize,
    /// Pool organisation.
    pub topology: PoolTopology,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Queries each client issues.
    pub requests_per_client: usize,
    /// Network model (LAN or WAN configuration).
    pub network: NetworkModel,
    /// Link class between clients and the service front end.
    pub client_link: LinkProfile,
    /// Stage service costs.
    pub costs: SimCosts,
    /// Number of replicated query-manager servers.
    pub query_managers: usize,
    /// Number of replicated pool-manager servers.
    pub pool_managers: usize,
    /// Scheduling objective of the pools.
    pub objective: SchedulingObjective,
    /// Think time between a client's reply and its next query.
    pub think_time: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's base setup: 3,200 machines, LAN, closed-loop clients.
    pub fn paper_baseline() -> Self {
        ExperimentConfig {
            machines: 3_200,
            topology: PoolTopology::SinglePool,
            clients: 32,
            requests_per_client: 20,
            network: NetworkModel::lan(),
            client_link: LinkProfile::Lan,
            costs: SimCosts::default(),
            query_managers: 1,
            pool_managers: 1,
            objective: SchedulingObjective::LeastLoaded,
            think_time: SimDuration::from_millis(5),
            seed: 0x2001_04AC,
        }
    }
}

/// The measurements produced by one experiment run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Response-time samples, in seconds.
    pub response: SampleSet,
    /// Number of queries completed.
    pub completed: u64,
    /// Number of queries that found no available machine.
    pub failed: u64,
    /// Virtual time at which the experiment finished.
    pub makespan: SimDuration,
}

impl ExperimentResult {
    /// Mean response time in seconds.
    pub fn mean_response(&self) -> f64 {
        self.response.mean()
    }

    /// The `q` response-time quantile in seconds.
    pub fn response_quantile(&mut self, q: f64) -> f64 {
        self.response.quantile(q)
    }

    /// Completed queries per second of virtual time.
    pub fn throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The query every simulated client issues: a `sun` machine with at least
/// 10 MB of memory, the shape of the paper's example.
fn client_query() -> BasicQuery {
    Query::new()
        .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
        .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
        .with(QueryKey::user("login"), Constraint::eq("client"))
        .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
        .decompose(1)
        .remove(0)
}

struct SimPool {
    pool: ResourcePool,
    server: FcfsServer,
}

/// One simulated deployment, reusable across parameter sweeps.
pub struct SimulatedPipeline {
    config: ExperimentConfig,
    db: SharedDatabase,
    pools: Vec<SimPool>,
    query_managers: Vec<FcfsServer>,
    pool_managers: Vec<FcfsServer>,
    rng: Rng,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Request { client: usize, remaining: usize },
}

impl SimulatedPipeline {
    /// Builds the deployment: generates the machine fleet, partitions it
    /// into pools according to the topology, and sets up the stage servers.
    pub fn new(config: ExperimentConfig) -> Self {
        let db = SyntheticFleet::new(
            FleetSpec::homogeneous(config.machines, "sun", 256),
            config.seed,
        )
        .generate()
        .into_shared();
        let mut rng = Rng::new(config.seed ^ 0x51D);

        let all_machines: Vec<MachineId> = db.read().iter().map(|m| m.id).collect();
        let pool_name = PoolName::from_query(&client_query());

        let make_pool = |machines: Vec<MachineId>,
                         instance: u32,
                         bias: ReplicaBias,
                         seed: u64|
         -> ResourcePool {
            ResourcePool::from_cache(
                pool_name.clone(),
                instance,
                bias,
                machines,
                db.clone(),
                config.objective,
                seed,
                false,
            )
            .expect("experiment pools are never empty")
        };

        let pools: Vec<SimPool> = match config.topology {
            PoolTopology::SinglePool => vec![SimPool {
                pool: make_pool(all_machines, 0, ReplicaBias::none(), config.seed),
                server: FcfsServer::new(),
            }],
            PoolTopology::Striped { pools } | PoolTopology::Split { parts: pools } => {
                let pools = pools.max(1);
                let chunk = all_machines.len().div_ceil(pools);
                all_machines
                    .chunks(chunk.max(1))
                    .enumerate()
                    .map(|(i, machines)| SimPool {
                        pool: make_pool(
                            machines.to_vec(),
                            i as u32,
                            ReplicaBias::none(),
                            config.seed + i as u64,
                        ),
                        server: FcfsServer::new(),
                    })
                    .collect()
            }
            PoolTopology::Replicated { replicas } => {
                let replicas = replicas.max(1) as u32;
                (0..replicas)
                    .map(|i| SimPool {
                        pool: make_pool(
                            all_machines.clone(),
                            i,
                            ReplicaBias {
                                instance: i,
                                replicas,
                            },
                            config.seed + i as u64,
                        ),
                        server: FcfsServer::new(),
                    })
                    .collect()
            }
        };

        let query_managers = vec![FcfsServer::new(); config.query_managers.max(1)];
        let pool_managers = vec![FcfsServer::new(); config.pool_managers.max(1)];
        let _ = rng.next_u64();

        SimulatedPipeline {
            config,
            db,
            pools,
            query_managers,
            pool_managers,
            rng,
        }
    }

    /// Number of pool instances in the deployment.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Size (machines) of pool `i`.
    pub fn pool_size(&self, i: usize) -> usize {
        self.pools[i].pool.size()
    }

    fn pool_service_cost(costs: &SimCosts, examined: usize) -> SimDuration {
        costs.pool_base + costs.per_machine * examined as u64
    }

    /// Serves one query on a specific pool at virtual time `at`; returns the
    /// completion time on that pool's scheduling-process server and whether
    /// the allocation succeeded.
    fn serve_on_pool(
        &mut self,
        pool_index: usize,
        request: RequestId,
        at: SimTime,
    ) -> (SimTime, bool) {
        let costs = self.config.costs.clone();
        let entry = &mut self.pools[pool_index];
        let (examined, ok) = match entry.pool.allocate(request, &client_query(), 12) {
            Ok(allocation) => {
                let examined = allocation.examined;
                // The experiments measure scheduling response, not job
                // residence: release immediately so the pool never runs dry.
                let _ = entry.pool.release(&allocation);
                (examined, true)
            }
            Err(_) => (entry.pool.size(), false),
        };
        let done = entry
            .server
            .serve(at, Self::pool_service_cost(&costs, examined));
        (done, ok)
    }

    /// Runs the experiment and returns the measurements.
    pub fn run(&mut self) -> ExperimentResult {
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut response = SampleSet::new();
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut request_counter = 0u64;

        // Stagger client start times slightly so simultaneous arrival does
        // not synchronise the closed loops artificially.
        for client in 0..self.config.clients {
            let jitter = SimDuration::from_micros(self.rng.below(500));
            queue.schedule_at(
                SimTime::ZERO + jitter,
                Event::Request {
                    client,
                    remaining: self.config.requests_per_client,
                },
            );
        }

        let client_link = self.config.client_link;
        while let Some(scheduled) = queue.pop() {
            let Event::Request { client, remaining } = scheduled.event;
            if remaining == 0 {
                continue;
            }
            let start = scheduled.at;
            let request = RequestId(request_counter);
            request_counter += 1;

            // Client → query manager.
            let network = self.config.network.clone();
            let costs = self.config.costs.clone();
            let lat_in = network.latency(client_link, &mut self.rng, 512);
            let qm_index = (request_counter as usize) % self.query_managers.len();
            let qm_done = self.query_managers[qm_index].serve(start + lat_in, costs.query_manager);

            // Query manager → pool manager.
            let lat_qm_pm = network.latency(LinkProfile::Local, &mut self.rng, 512);
            let pm_index = (request_counter as usize) % self.pool_managers.len();
            let pm_done =
                self.pool_managers[pm_index].serve(qm_done + lat_qm_pm, costs.pool_manager);

            // Pool manager → pool(s).
            let lat_pm_pool = network.latency(LinkProfile::Local, &mut self.rng, 512);
            let pool_arrival = pm_done + lat_pm_pool;
            let (pool_done, ok) = match self.config.topology {
                PoolTopology::Split { .. } => {
                    // Fan out to every part; the reply re-integrates when the
                    // slowest part finishes.
                    let mut latest = pool_arrival;
                    let mut any_ok = false;
                    for i in 0..self.pools.len() {
                        let (done, ok) = self.serve_on_pool(i, request, pool_arrival);
                        latest = latest.max(done);
                        any_ok |= ok;
                    }
                    (latest, any_ok)
                }
                PoolTopology::Replicated { .. } => {
                    let i = (request_counter as usize) % self.pools.len();
                    self.serve_on_pool(i, request, pool_arrival)
                }
                _ => {
                    // Queries are striped randomly across pools (the paper's
                    // setup for Figures 4 and 5).
                    let i = self.rng.index(self.pools.len());
                    self.serve_on_pool(i, request, pool_arrival)
                }
            };

            // Pool → client reply.
            let lat_out = network.latency(client_link, &mut self.rng, 256);
            let finish = pool_done + costs.reply + lat_out;
            response.record_duration(finish - start);
            if ok {
                completed += 1;
            } else {
                failed += 1;
            }

            if remaining > 1 {
                queue.schedule_at(
                    finish + self.config.think_time,
                    Event::Request {
                        client,
                        remaining: remaining - 1,
                    },
                );
            }
        }

        ExperimentResult {
            response,
            completed,
            failed,
            makespan: queue.now() - SimTime::ZERO,
        }
    }

    /// The resource database backing the deployment (for inspection).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }
}

/// Convenience wrapper: build the deployment and run it.
pub fn run_experiment(config: ExperimentConfig) -> ExperimentResult {
    SimulatedPipeline::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(topology: PoolTopology, clients: usize) -> ExperimentConfig {
        ExperimentConfig {
            machines: 400,
            topology,
            clients,
            requests_per_client: 8,
            ..ExperimentConfig::paper_baseline()
        }
    }

    #[test]
    fn all_requests_complete() {
        let mut result = run_experiment(small(PoolTopology::SinglePool, 4));
        assert_eq!(result.completed + result.failed, 4 * 8);
        assert_eq!(result.failed, 0);
        assert!(result.mean_response() > 0.0);
        assert!(result.response_quantile(0.95) >= result.response_quantile(0.5));
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn experiments_are_deterministic_for_a_seed() {
        let a = run_experiment(small(PoolTopology::SinglePool, 4)).mean_response();
        let b = run_experiment(small(PoolTopology::SinglePool, 4)).mean_response();
        assert_eq!(a, b);
    }

    #[test]
    fn more_clients_increase_response_time() {
        let light = run_experiment(small(PoolTopology::SinglePool, 2)).mean_response();
        let heavy = run_experiment(small(PoolTopology::SinglePool, 24)).mean_response();
        assert!(
            heavy > light * 2.0,
            "heavy load {heavy} should dominate light load {light}"
        );
    }

    #[test]
    fn more_pools_reduce_response_time_under_load() {
        let two = run_experiment(small(PoolTopology::Striped { pools: 2 }, 24)).mean_response();
        let eight = run_experiment(small(PoolTopology::Striped { pools: 8 }, 24)).mean_response();
        assert!(
            eight < two,
            "8 pools ({eight}) must beat 2 pools ({two}) under load"
        );
    }

    #[test]
    fn bigger_pools_mean_slower_responses() {
        let small_pool = run_experiment(ExperimentConfig {
            machines: 200,
            ..small(PoolTopology::SinglePool, 12)
        })
        .mean_response();
        let big_pool = run_experiment(ExperimentConfig {
            machines: 1600,
            ..small(PoolTopology::SinglePool, 12)
        })
        .mean_response();
        assert!(
            big_pool > small_pool,
            "3,200-style pool ({big_pool}) should be slower than small pool ({small_pool})"
        );
    }

    #[test]
    fn splitting_a_pool_reduces_response_time() {
        let whole = run_experiment(small(PoolTopology::SinglePool, 16)).mean_response();
        let split = run_experiment(small(PoolTopology::Split { parts: 4 }, 16)).mean_response();
        assert!(
            split < whole,
            "split pool ({split}) must beat the monolithic pool ({whole})"
        );
    }

    #[test]
    fn replication_reduces_response_time_under_load() {
        let one =
            run_experiment(small(PoolTopology::Replicated { replicas: 1 }, 24)).mean_response();
        let four =
            run_experiment(small(PoolTopology::Replicated { replicas: 4 }, 24)).mean_response();
        assert!(
            four < one,
            "4 replicas ({four}) must beat a single instance ({one})"
        );
    }

    #[test]
    fn wan_configuration_adds_a_latency_floor() {
        let lan = run_experiment(small(PoolTopology::Striped { pools: 8 }, 4)).mean_response();
        let wan = run_experiment(ExperimentConfig {
            network: NetworkModel::wan(),
            client_link: LinkProfile::Wan,
            ..small(PoolTopology::Striped { pools: 8 }, 4)
        })
        .mean_response();
        assert!(
            wan > lan + 0.1,
            "wan ({wan}) must carry at least the round-trip latency over lan ({lan})"
        );
    }

    #[test]
    fn topology_construction_matches_request() {
        let sim = SimulatedPipeline::new(small(PoolTopology::Striped { pools: 5 }, 1));
        assert_eq!(sim.pool_count(), 5);
        assert_eq!((0..5).map(|i| sim.pool_size(i)).sum::<usize>(), 400);

        let rep = SimulatedPipeline::new(small(PoolTopology::Replicated { replicas: 3 }, 1));
        assert_eq!(rep.pool_count(), 3);
        assert!(rep.database().read().len() == 400);
        assert_eq!(rep.pool_size(0), 400);
        assert_eq!(rep.pool_size(2), 400);
    }
}
