//! Pool managers.
//!
//! "Pool managers map queries to pool names and select an appropriate
//! instance of a resource pool when multiple ones exist.  They also create
//! resource pools when necessary, and forward queries to other pool managers
//! if the requested resources are not available locally" (Section 5.2.2).
//!
//! A pool manager owns the resource-pool instances it has created, registers
//! them with the shared [`crate::directory::LocalDirectoryService`], and
//! reports one of three outcomes for a query: an allocation, a forward to a
//! pool instance hosted by a *different* pool manager, or "cannot create"
//! which makes the caller delegate the query to a peer pool manager (with
//! the TTL and visited-list bookkeeping carried in the query's routing
//! state).

use std::collections::HashMap;

use actyp_grid::SharedDatabase;
use actyp_query::{BasicQuery, PoolName};
use actyp_simnet::Rng;

use crate::allocation::{Allocation, AllocationError};
use crate::directory::{PoolInstanceRecord, SharedDirectory};
use crate::message::{RequestId, StageAddress};
use crate::resource_pool::ResourcePool;
use crate::scheduler::{ReplicaBias, SchedulingObjective};

/// How a pool manager chooses among multiple instances of the same pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstanceSelection {
    /// Pick a registered instance uniformly at random (the paper's default).
    #[default]
    Random,
    /// Rotate through the registered instances.
    RoundRobin,
    /// Always use the lowest-numbered instance.
    First,
}

/// Configuration of one pool manager.
#[derive(Debug, Clone)]
pub struct PoolManagerConfig {
    /// Instance-selection policy.
    pub selection: InstanceSelection,
    /// Scheduling objective given to pools this manager creates.
    pub objective: SchedulingObjective,
    /// Host used when registering created pools in the directory.
    pub host: String,
    /// Base port for created pools (each pool gets `base_port + n`).
    pub base_port: u16,
}

impl Default for PoolManagerConfig {
    fn default() -> Self {
        PoolManagerConfig {
            selection: InstanceSelection::Random,
            objective: SchedulingObjective::LeastLoaded,
            host: "actyp-host".to_string(),
            base_port: 7300,
        }
    }
}

/// The outcome of handing a query to a pool manager.
#[derive(Debug)]
pub enum HandleOutcome {
    /// The query was satisfied by a pool hosted by this manager.
    Allocated(Allocation),
    /// The selected pool instance is hosted by another manager; the caller
    /// must forward the query there.
    Forward {
        /// Name of the hosting pool manager.
        manager: String,
        /// Full pool name.
        pool: String,
        /// Instance number to use.
        instance: u32,
    },
    /// No pool exists and none can be created from this manager's database;
    /// the query should be delegated to a peer pool manager.
    CannotCreate,
    /// A pool was found/created but the allocation failed (all machines
    /// busy, policy denied, …).  Carries the underlying error.
    Failed(AllocationError),
}

/// A pool manager stage.
#[derive(Debug)]
pub struct PoolManager {
    name: String,
    db: SharedDatabase,
    directory: SharedDirectory,
    config: PoolManagerConfig,
    pools: HashMap<(String, u32), ResourcePool>,
    round_robin: HashMap<String, usize>,
    rng: Rng,
    created: u64,
}

impl PoolManager {
    /// Creates a pool manager for one administrative domain.
    pub fn new(
        name: impl Into<String>,
        db: SharedDatabase,
        directory: SharedDirectory,
        config: PoolManagerConfig,
        seed: u64,
    ) -> Self {
        let name = name.into();
        directory.register_pool_manager(name.clone());
        PoolManager {
            name,
            db,
            directory,
            config,
            pools: HashMap::new(),
            round_robin: HashMap::new(),
            rng: Rng::new(seed),
            created: 0,
        }
    }

    /// This manager's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pool instances hosted by this manager.
    pub fn hosted_pools(&self) -> usize {
        self.pools.len()
    }

    /// Number of pools this manager has created over its lifetime.
    pub fn pools_created(&self) -> u64 {
        self.created
    }

    /// Whether this manager hosts the given pool instance.
    pub fn hosts(&self, pool: &str, instance: u32) -> bool {
        self.pools.contains_key(&(pool.to_string(), instance))
    }

    /// Iterates over the pool instances hosted by this manager.
    pub fn pool_instances(&self) -> impl Iterator<Item = (&str, u32, usize)> {
        self.pools
            .iter()
            .map(|((name, instance), pool)| (name.as_str(), *instance, pool.size()))
    }

    /// Installs an externally built pool (used by experiments that
    /// pre-partition machines into pools, and by splitting/replication).
    pub fn adopt_pool(&mut self, pool: ResourcePool) {
        let record = PoolInstanceRecord {
            pool: pool.name().full(),
            instance: pool.instance(),
            manager: self.name.clone(),
            address: StageAddress::new(
                self.config.host.clone(),
                self.config.base_port + self.pools.len() as u16,
            ),
        };
        self.directory.register_pool(record);
        self.pools
            .insert((pool.name().full(), pool.instance()), pool);
    }

    /// Maps a query to its pool name (exposed for diagnostics and tests).
    pub fn map_query(&self, query: &BasicQuery) -> PoolName {
        PoolName::from_query(query)
    }

    fn create_pool(&mut self, name: &PoolName) -> Result<u32, AllocationError> {
        let instance = self
            .directory
            .next_instance_number(&name.full())
            .ok_or_else(|| {
                AllocationError::Internal(format!(
                    "instance numbers for pool `{}` are exhausted",
                    name.full()
                ))
            })?;
        let pool = ResourcePool::create(
            name.clone(),
            instance,
            ReplicaBias::none(),
            self.db.clone(),
            self.config.objective,
            self.rng.next_u64(),
        )?;
        self.created += 1;
        self.adopt_pool(pool);
        Ok(instance)
    }

    fn select_instance(
        &mut self,
        pool: &str,
        records: &[PoolInstanceRecord],
    ) -> PoolInstanceRecord {
        debug_assert!(!records.is_empty());
        match self.config.selection {
            InstanceSelection::First => records
                .iter()
                .min_by_key(|r| r.instance)
                .expect("non-empty")
                .clone(),
            InstanceSelection::Random => records[self.rng.index(records.len())].clone(),
            InstanceSelection::RoundRobin => {
                let cursor = self.round_robin.entry(pool.to_string()).or_insert(0);
                let record = records[*cursor % records.len()].clone();
                *cursor += 1;
                record
            }
        }
    }

    /// Handles a query: map to a pool name, find or create an instance, and
    /// either allocate locally, ask the caller to forward, or ask it to
    /// delegate.
    pub fn handle(
        &mut self,
        request: RequestId,
        query: &BasicQuery,
        hour_of_day: u8,
    ) -> HandleOutcome {
        let name = self.map_query(query);
        let full = name.full();
        let mut records = self.directory.instances(&full);
        if records.is_empty() {
            match self.create_pool(&name) {
                Ok(_) => records = self.directory.instances(&full),
                Err(AllocationError::NoSuchResources) => return HandleOutcome::CannotCreate,
                Err(other) => return HandleOutcome::Failed(other),
            }
        }
        let record = self.select_instance(&full, &records);
        if record.manager != self.name {
            return HandleOutcome::Forward {
                manager: record.manager,
                pool: full,
                instance: record.instance,
            };
        }
        match self.allocate_from(&full, record.instance, request, query, hour_of_day) {
            Ok(allocation) => HandleOutcome::Allocated(allocation),
            Err(err) => HandleOutcome::Failed(err),
        }
    }

    /// Allocates from a specific pool instance hosted by this manager.
    pub fn allocate_from(
        &mut self,
        pool: &str,
        instance: u32,
        request: RequestId,
        query: &BasicQuery,
        hour_of_day: u8,
    ) -> Result<Allocation, AllocationError> {
        let key = (pool.to_string(), instance);
        match self.pools.get_mut(&key) {
            Some(p) => p.allocate(request, query, hour_of_day),
            None => Err(AllocationError::Internal(format!(
                "pool {pool}#{instance} is not hosted by {}",
                self.name
            ))),
        }
    }

    /// Releases an allocation previously granted by one of this manager's
    /// pools.
    pub fn release(&mut self, allocation: &Allocation) -> Result<(), AllocationError> {
        let key = (allocation.pool.clone(), allocation.pool_instance);
        match self.pools.get_mut(&key) {
            Some(p) => p.release(allocation),
            None => Err(AllocationError::UnknownAllocation),
        }
    }

    /// Destroys a hosted pool instance: unregisters it from the directory
    /// and releases its taken marks.
    pub fn destroy_pool(&mut self, pool: &str, instance: u32) -> bool {
        match self.pools.remove(&(pool.to_string(), instance)) {
            Some(p) => {
                self.directory.unregister_pool(pool, instance);
                p.dissolve();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::LocalDirectoryService;
    use actyp_grid::{FleetSpec, SyntheticFleet};
    use actyp_query::{Constraint, Query, QueryKey};

    fn setup(machines: usize) -> (SharedDatabase, SharedDirectory) {
        let db = SyntheticFleet::new(FleetSpec::with_machines(machines), 21)
            .generate()
            .into_shared();
        (db, LocalDirectoryService::new().into_shared())
    }

    fn sun_query() -> BasicQuery {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
            .decompose(1)
            .remove(0)
    }

    #[test]
    fn first_query_creates_a_pool_on_demand() {
        let (db, dir) = setup(200);
        let mut pm = PoolManager::new("pm-0", db, dir.clone(), PoolManagerConfig::default(), 1);
        assert_eq!(pm.hosted_pools(), 0);
        let outcome = pm.handle(RequestId(1), &sun_query(), 12);
        match outcome {
            HandleOutcome::Allocated(a) => {
                assert!(a.machine_name.contains("sun"));
            }
            other => panic!("expected allocation, got {other:?}"),
        }
        assert_eq!(pm.hosted_pools(), 1);
        assert_eq!(pm.pools_created(), 1);
        assert_eq!(dir.instance_count(), 1);
    }

    #[test]
    fn subsequent_queries_reuse_the_pool() {
        let (db, dir) = setup(200);
        let mut pm = PoolManager::new("pm-0", db, dir, PoolManagerConfig::default(), 1);
        for i in 0..5 {
            match pm.handle(RequestId(i), &sun_query(), 12) {
                HandleOutcome::Allocated(_) => {}
                other => panic!("expected allocation, got {other:?}"),
            }
        }
        assert_eq!(pm.pools_created(), 1, "the pool must be created once");
    }

    #[test]
    fn different_aggregation_criteria_create_different_pools() {
        let (db, dir) = setup(400);
        let mut pm = PoolManager::new("pm-0", db, dir, PoolManagerConfig::default(), 1);
        let hp = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("hp"))
            .decompose(1)
            .remove(0);
        let big = Query::new()
            .with(QueryKey::rsrc("memory"), Constraint::ge(512u64))
            .decompose(1)
            .remove(0);
        assert!(matches!(
            pm.handle(RequestId(1), &sun_query(), 12),
            HandleOutcome::Allocated(_)
        ));
        assert!(matches!(
            pm.handle(RequestId(2), &hp, 12),
            HandleOutcome::Allocated(_)
        ));
        assert!(matches!(
            pm.handle(RequestId(3), &big, 12),
            HandleOutcome::Allocated(_)
        ));
        assert_eq!(pm.hosted_pools(), 3);
    }

    #[test]
    fn unsatisfiable_criteria_yield_cannot_create() {
        let (db, dir) = setup(50);
        let mut pm = PoolManager::new("pm-0", db, dir, PoolManagerConfig::default(), 1);
        let cray = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("cray"))
            .decompose(1)
            .remove(0);
        assert!(matches!(
            pm.handle(RequestId(1), &cray, 12),
            HandleOutcome::CannotCreate
        ));
        assert_eq!(pm.hosted_pools(), 0);
    }

    #[test]
    fn queries_for_pools_hosted_elsewhere_are_forwarded() {
        let (db, dir) = setup(100);
        let mut pm_a = PoolManager::new(
            "pm-a",
            db.clone(),
            dir.clone(),
            PoolManagerConfig::default(),
            1,
        );
        let mut pm_b = PoolManager::new("pm-b", db, dir.clone(), PoolManagerConfig::default(), 2);
        // pm-a creates the sun pool.
        assert!(matches!(
            pm_a.handle(RequestId(1), &sun_query(), 12),
            HandleOutcome::Allocated(_)
        ));
        // pm-b sees the instance in the shared directory and forwards.
        match pm_b.handle(RequestId(2), &sun_query(), 12) {
            HandleOutcome::Forward {
                manager,
                pool,
                instance,
            } => {
                assert_eq!(manager, "pm-a");
                assert!(pm_a.hosts(&pool, instance));
                // Completing the forward yields an allocation.
                let a = pm_a
                    .allocate_from(&pool, instance, RequestId(2), &sun_query(), 12)
                    .unwrap();
                assert_eq!(a.pool, pool);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn release_goes_back_through_the_hosting_pool() {
        let (db, dir) = setup(100);
        let mut pm = PoolManager::new("pm-0", db.clone(), dir, PoolManagerConfig::default(), 1);
        let allocation = match pm.handle(RequestId(1), &sun_query(), 12) {
            HandleOutcome::Allocated(a) => a,
            other => panic!("expected allocation, got {other:?}"),
        };
        assert!(pm.release(&allocation).is_ok());
        assert_eq!(
            pm.release(&allocation),
            Err(AllocationError::UnknownAllocation)
        );
        let machine = db.read().get(allocation.machine).cloned().unwrap();
        assert_eq!(machine.dynamic.active_jobs, 0);
    }

    #[test]
    fn allocate_from_unknown_pool_is_an_internal_error() {
        let (db, dir) = setup(10);
        let mut pm = PoolManager::new("pm-0", db, dir, PoolManagerConfig::default(), 1);
        let err = pm
            .allocate_from("nope/none", 0, RequestId(1), &sun_query(), 12)
            .unwrap_err();
        assert!(matches!(err, AllocationError::Internal(_)));
    }

    #[test]
    fn round_robin_instance_selection_rotates() {
        let (db, dir) = setup(200);
        let config = PoolManagerConfig {
            selection: InstanceSelection::RoundRobin,
            ..PoolManagerConfig::default()
        };
        let mut pm = PoolManager::new("pm-0", db.clone(), dir.clone(), config, 1);
        // Create a pool and then adopt a replicated second instance.
        let first = match pm.handle(RequestId(1), &sun_query(), 12) {
            HandleOutcome::Allocated(a) => a,
            other => panic!("expected allocation, got {other:?}"),
        };
        let name = PoolName::from_query(&sun_query());
        let extra = ResourcePool::from_cache(
            name,
            1,
            ReplicaBias {
                instance: 1,
                replicas: 2,
            },
            db.read().walk(|m| {
                m.attribute("arch")
                    .map(|a| a.contains("sun"))
                    .unwrap_or(false)
            }),
            db.clone(),
            SchedulingObjective::LeastLoaded,
            9,
            false,
        )
        .unwrap();
        pm.adopt_pool(extra);
        assert_eq!(dir.instances(&first.pool).len(), 2);

        let mut instances_used = std::collections::HashSet::new();
        for i in 10..14 {
            match pm.handle(RequestId(i), &sun_query(), 12) {
                HandleOutcome::Allocated(a) => {
                    instances_used.insert(a.pool_instance);
                }
                other => panic!("expected allocation, got {other:?}"),
            }
        }
        assert_eq!(
            instances_used.len(),
            2,
            "round robin must use both instances"
        );
    }

    #[test]
    fn destroy_pool_unregisters_and_releases_claims() {
        let (db, dir) = setup(100);
        let mut pm = PoolManager::new(
            "pm-0",
            db.clone(),
            dir.clone(),
            PoolManagerConfig::default(),
            1,
        );
        let allocation = match pm.handle(RequestId(1), &sun_query(), 12) {
            HandleOutcome::Allocated(a) => a,
            other => panic!("expected allocation, got {other:?}"),
        };
        assert!(db.read().taken_count() > 0);
        assert!(pm.destroy_pool(&allocation.pool, allocation.pool_instance));
        assert_eq!(pm.hosted_pools(), 0);
        assert_eq!(dir.instance_count(), 0);
        assert_eq!(db.read().taken_count(), 0);
        assert!(!pm.destroy_pool(&allocation.pool, allocation.pool_instance));
    }
}
