//! Scheduling processes.
//!
//! Each pool object has one or more scheduling processes whose job is to
//! order the machines in the object's cache by a configured objective and to
//! answer allocation queries (Section 5.2.3).  The paper notes the prototype
//! used linear search — the linear growth of response time with pool size in
//! Figure 6 is a direct consequence — so the selection here is also a linear
//! scan, and every outcome reports how many cache entries were examined so
//! the simulated experiments can charge the same cost.

use actyp_grid::{MachineId, ResourceDatabase};
use actyp_query::{admits_user, matches_machine, BasicQuery};
use actyp_simnet::Rng;

use crate::allocation::AllocationError;

/// The objective a scheduling process optimises when choosing among the
/// machines that satisfy a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingObjective {
    /// Prefer the machine with the lowest current load (the PUNCH default).
    #[default]
    LeastLoaded,
    /// Prefer the machine with the most free memory.
    MostFreeMemory,
    /// Prefer the machine with the highest effective speed rating.
    FastestCpu,
    /// Take candidates in rotation (cheap, ignores machine state).
    RoundRobin,
    /// Pick a random candidate (cheap, statistically balances load).
    Random,
    /// Return the first acceptable candidate found (early exit — trades
    /// selection quality for a shorter scan).
    FirstFit,
}

/// Replica bias: "instance *i* of a given pool prefers every *i*-th machine
/// in the pool" — the mechanism the paper uses to keep scheduling integrity
/// when pools are replicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaBias {
    /// This instance's number.
    pub instance: u32,
    /// Total number of replicas of the pool.
    pub replicas: u32,
}

impl ReplicaBias {
    /// Bias for an unreplicated pool.
    pub fn none() -> Self {
        ReplicaBias {
            instance: 0,
            replicas: 1,
        }
    }

    /// Whether the machine at cache position `index` is preferred by this
    /// instance.
    pub fn prefers(&self, index: usize) -> bool {
        self.replicas <= 1 || (index as u32) % self.replicas == self.instance % self.replicas
    }
}

/// The result of a selection: which machine, and how much work it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// The chosen machine.
    pub machine: MachineId,
    /// Position of the chosen machine in the pool cache.
    pub cache_index: usize,
    /// Number of cache entries examined during the scan.
    pub examined: usize,
}

/// Context needed to evaluate candidates.
pub struct ScheduleRequest<'a> {
    /// The basic query being served.
    pub query: &'a BasicQuery,
    /// Hour of virtual day, for time-of-day usage policies.
    pub hour_of_day: u8,
}

/// A scheduling process: selection state (round-robin cursor, RNG) plus the
/// configured objective.
#[derive(Debug)]
pub struct Scheduler {
    objective: SchedulingObjective,
    bias: ReplicaBias,
    round_robin_cursor: usize,
    rng: Rng,
}

impl Scheduler {
    /// Creates a scheduling process.
    pub fn new(objective: SchedulingObjective, bias: ReplicaBias, seed: u64) -> Self {
        Scheduler {
            objective,
            bias,
            round_robin_cursor: 0,
            rng: Rng::new(seed),
        }
    }

    /// The configured objective.
    pub fn objective(&self) -> SchedulingObjective {
        self.objective
    }

    /// The configured replica bias.
    pub fn bias(&self) -> ReplicaBias {
        self.bias
    }

    fn score(&self, db: &ResourceDatabase, id: MachineId) -> f64 {
        let Some(m) = db.get(id) else {
            return f64::NEG_INFINITY;
        };
        match self.objective {
            // Higher score is better, so negate load.
            SchedulingObjective::LeastLoaded => -m.dynamic.current_load,
            SchedulingObjective::MostFreeMemory => m.dynamic.available_memory_mb,
            SchedulingObjective::FastestCpu => m.effective_speed,
            // Objectives below never reach the scoring path.
            SchedulingObjective::RoundRobin
            | SchedulingObjective::Random
            | SchedulingObjective::FirstFit => 0.0,
        }
    }

    fn acceptable(db: &ResourceDatabase, id: MachineId, request: &ScheduleRequest<'_>) -> bool {
        let Some(m) = db.get(id) else {
            return false;
        };
        m.accepting_work()
            && matches_machine(request.query, m).is_match()
            && admits_user(request.query, m, request.hour_of_day)
    }

    /// Selects a machine from `cache` for the request.  The scan is linear;
    /// `FirstFit` stops at the first acceptable candidate (honouring the
    /// replica bias), every other objective examines the whole cache.
    pub fn select(
        &mut self,
        cache: &[MachineId],
        db: &ResourceDatabase,
        request: &ScheduleRequest<'_>,
    ) -> Result<ScheduleOutcome, AllocationError> {
        if cache.is_empty() {
            return Err(AllocationError::NoneAvailable);
        }
        match self.objective {
            SchedulingObjective::FirstFit => self.select_first_fit(cache, db, request),
            SchedulingObjective::RoundRobin => self.select_round_robin(cache, db, request),
            SchedulingObjective::Random => self.select_random(cache, db, request),
            _ => self.select_by_score(cache, db, request),
        }
    }

    fn select_by_score(
        &mut self,
        cache: &[MachineId],
        db: &ResourceDatabase,
        request: &ScheduleRequest<'_>,
    ) -> Result<ScheduleOutcome, AllocationError> {
        let mut best: Option<(usize, MachineId, f64, bool)> = None;
        for (index, &id) in cache.iter().enumerate() {
            if !Self::acceptable(db, id, request) {
                continue;
            }
            let score = self.score(db, id);
            let preferred = self.bias.prefers(index);
            let better = match &best {
                None => true,
                // Preferred machines beat non-preferred ones; ties break on
                // score.
                Some((_, _, best_score, best_pref)) => {
                    (preferred && !best_pref) || (preferred == *best_pref && score > *best_score)
                }
            };
            if better {
                best = Some((index, id, score, preferred));
            }
        }
        match best {
            Some((cache_index, machine, _, _)) => Ok(ScheduleOutcome {
                machine,
                cache_index,
                examined: cache.len(),
            }),
            None => Err(AllocationError::NoneAvailable),
        }
    }

    fn select_first_fit(
        &mut self,
        cache: &[MachineId],
        db: &ResourceDatabase,
        request: &ScheduleRequest<'_>,
    ) -> Result<ScheduleOutcome, AllocationError> {
        // First pass over preferred slots, then a fallback pass over the
        // rest, counting every examined entry.
        let mut examined = 0;
        let mut fallback: Option<(usize, MachineId)> = None;
        for (index, &id) in cache.iter().enumerate() {
            examined += 1;
            if !Self::acceptable(db, id, request) {
                continue;
            }
            if self.bias.prefers(index) {
                return Ok(ScheduleOutcome {
                    machine: id,
                    cache_index: index,
                    examined,
                });
            }
            if fallback.is_none() {
                fallback = Some((index, id));
            }
        }
        match fallback {
            Some((cache_index, machine)) => Ok(ScheduleOutcome {
                machine,
                cache_index,
                examined,
            }),
            None => Err(AllocationError::NoneAvailable),
        }
    }

    fn select_round_robin(
        &mut self,
        cache: &[MachineId],
        db: &ResourceDatabase,
        request: &ScheduleRequest<'_>,
    ) -> Result<ScheduleOutcome, AllocationError> {
        let n = cache.len();
        let start = self.round_robin_cursor % n;
        for offset in 0..n {
            let index = (start + offset) % n;
            if Self::acceptable(db, cache[index], request) {
                self.round_robin_cursor = index + 1;
                return Ok(ScheduleOutcome {
                    machine: cache[index],
                    cache_index: index,
                    examined: offset + 1,
                });
            }
        }
        Err(AllocationError::NoneAvailable)
    }

    fn select_random(
        &mut self,
        cache: &[MachineId],
        db: &ResourceDatabase,
        request: &ScheduleRequest<'_>,
    ) -> Result<ScheduleOutcome, AllocationError> {
        // Try a handful of random probes, then fall back to a full scan so
        // the selection is complete even under heavy contention.
        let n = cache.len();
        let mut examined = 0;
        for _ in 0..8.min(n) {
            let index = self.rng.index(n);
            examined += 1;
            if Self::acceptable(db, cache[index], request) {
                return Ok(ScheduleOutcome {
                    machine: cache[index],
                    cache_index: index,
                    examined,
                });
            }
        }
        for (index, &id) in cache.iter().enumerate() {
            examined += 1;
            if Self::acceptable(db, id, request) {
                return Ok(ScheduleOutcome {
                    machine: id,
                    cache_index: index,
                    examined,
                });
            }
        }
        Err(AllocationError::NoneAvailable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, Machine, MachineId, SyntheticFleet};
    use actyp_query::{Constraint, Query, QueryKey};

    fn db_and_cache(n: usize) -> (ResourceDatabase, Vec<MachineId>) {
        let mut fleet = SyntheticFleet::new(FleetSpec::homogeneous(n, "sun", 256), 42);
        let db = fleet.generate();
        let cache: Vec<MachineId> = db.iter().map(|m| m.id).collect();
        (db, cache)
    }

    fn sun_query() -> BasicQuery {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0)
    }

    fn request(query: &BasicQuery) -> ScheduleRequest<'_> {
        ScheduleRequest {
            query,
            hour_of_day: 12,
        }
    }

    #[test]
    fn least_loaded_picks_the_idle_machine() {
        let (mut db, cache) = db_and_cache(10);
        for (i, &id) in cache.iter().enumerate() {
            db.update_dynamic(id, actyp_simnet::SimTime::ZERO, |m| {
                m.dynamic.current_load = 1.0 + i as f64 * 0.1;
            });
        }
        // Make one machine clearly idle.
        db.update_dynamic(cache[7], actyp_simnet::SimTime::ZERO, |m| {
            m.dynamic.current_load = 0.0;
        });
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::LeastLoaded, ReplicaBias::none(), 1);
        let outcome = sched.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.machine, cache[7]);
        assert_eq!(outcome.examined, 10, "full linear scan");
    }

    #[test]
    fn most_free_memory_objective() {
        let (mut db, cache) = db_and_cache(5);
        for (i, &id) in cache.iter().enumerate() {
            db.update_dynamic(id, actyp_simnet::SimTime::ZERO, |m| {
                m.dynamic.available_memory_mb = 10.0 * (i as f64 + 1.0);
            });
        }
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::MostFreeMemory, ReplicaBias::none(), 1);
        let outcome = sched.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.machine, cache[4]);
    }

    #[test]
    fn fastest_cpu_objective() {
        let (mut db, cache) = db_and_cache(5);
        let target = cache[2];
        db.get_mut(target).unwrap().effective_speed = 10_000.0;
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::FastestCpu, ReplicaBias::none(), 1);
        assert_eq!(
            sched.select(&cache, &db, &request(&q)).unwrap().machine,
            target
        );
    }

    #[test]
    fn first_fit_exits_early() {
        let (db, cache) = db_and_cache(100);
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::FirstFit, ReplicaBias::none(), 1);
        let outcome = sched.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.examined, 1);
        assert_eq!(outcome.cache_index, 0);
    }

    #[test]
    fn round_robin_rotates_through_candidates() {
        let (db, cache) = db_and_cache(4);
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::RoundRobin, ReplicaBias::none(), 1);
        let picks: Vec<usize> = (0..4)
            .map(|_| sched.select(&cache, &db, &request(&q)).unwrap().cache_index)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unacceptable_machines_are_skipped() {
        let (mut db, cache) = db_and_cache(6);
        // Mark the first three machines down.
        for &id in &cache[..3] {
            db.set_state(id, actyp_grid::MachineState::Down);
        }
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::FirstFit, ReplicaBias::none(), 1);
        let outcome = sched.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.cache_index, 3);
        assert_eq!(outcome.examined, 4);
    }

    #[test]
    fn query_constraints_filter_candidates() {
        let (mut db, mut cache) = db_and_cache(3);
        // Add one HP machine to the cache.
        let hp = db.register(Machine::new(MachineId(0), "hp-1").with_param("arch", "hp"));
        cache.push(hp);
        let q = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("hp"))
            .decompose(1)
            .remove(0);
        let mut sched = Scheduler::new(SchedulingObjective::LeastLoaded, ReplicaBias::none(), 1);
        assert_eq!(sched.select(&cache, &db, &request(&q)).unwrap().machine, hp);
    }

    #[test]
    fn empty_or_exhausted_cache_is_an_error() {
        let (mut db, cache) = db_and_cache(3);
        let q = sun_query();
        let mut sched = Scheduler::new(SchedulingObjective::LeastLoaded, ReplicaBias::none(), 1);
        assert_eq!(
            sched.select(&[], &db, &request(&q)),
            Err(AllocationError::NoneAvailable)
        );
        for &id in &cache {
            db.set_state(id, actyp_grid::MachineState::Blocked);
        }
        assert_eq!(
            sched.select(&cache, &db, &request(&q)),
            Err(AllocationError::NoneAvailable)
        );
    }

    #[test]
    fn replica_bias_prefers_own_stripe() {
        let (db, cache) = db_and_cache(16);
        let q = sun_query();
        let bias = ReplicaBias {
            instance: 1,
            replicas: 4,
        };
        let mut sched = Scheduler::new(SchedulingObjective::LeastLoaded, bias, 1);
        let outcome = sched.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.cache_index % 4, 1);

        let mut ff = Scheduler::new(SchedulingObjective::FirstFit, bias, 1);
        let outcome = ff.select(&cache, &db, &request(&q)).unwrap();
        assert_eq!(outcome.cache_index, 1);
    }

    #[test]
    fn replica_bias_none_prefers_everything() {
        let bias = ReplicaBias::none();
        assert!(bias.prefers(0));
        assert!(bias.prefers(17));
        let striped = ReplicaBias {
            instance: 2,
            replicas: 3,
        };
        assert!(striped.prefers(2));
        assert!(striped.prefers(5));
        assert!(!striped.prefers(3));
    }

    #[test]
    fn random_selection_is_deterministic_per_seed_and_valid() {
        let (db, cache) = db_and_cache(50);
        let q = sun_query();
        let mut a = Scheduler::new(SchedulingObjective::Random, ReplicaBias::none(), 9);
        let mut b = Scheduler::new(SchedulingObjective::Random, ReplicaBias::none(), 9);
        for _ in 0..10 {
            let x = a.select(&cache, &db, &request(&q)).unwrap();
            let y = b.select(&cache, &db, &request(&q)).unwrap();
            assert_eq!(x.machine, y.machine);
            assert!(cache.contains(&x.machine));
        }
    }
}
