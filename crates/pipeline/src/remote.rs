//! The wire deployment: a `ypd` server hosting any backend behind the
//! [`actyp_proto`] protocol, and the [`RemoteBackend`] client that puts the
//! same [`ResourceManager`] surface on the other end of a TCP socket.
//!
//! The paper's architecture is explicitly a *network* service — "queries
//! propagate from one stage to the next via TCP or UDP", and "all state
//! information is carried with the query itself".  This module closes the
//! gap the in-process backends leave open: the exact client code that runs
//! against the embedded engine runs unchanged against a daemon on another
//! machine, and the ticket pipelining the paper measures now spans a real
//! network hop — multiple tickets in flight on one connection, multiplexed
//! by [`RequestId`] correlation.
//!
//! # Server
//!
//! [`serve`] binds a listener and hosts *any* [`ResourceManager`] — the
//! embedded engine, the threaded live pipeline or a centralized baseline.
//! Each connection is a *session* with its own ticket table: wire ticket
//! ids are session-scoped, so one client can never redeem (or guess)
//! another's tickets.  Allocations are *session leases*: a session that
//! ends settles its outstanding tickets (outcomes awaited, bounded by a
//! teardown budget) and hands back every allocation the client still held,
//! so an abruptly disconnected client leaks neither machines nor window
//! permits.  [`ServerHandle::halt`] (or a client's [`ClientFrame::Halt`])
//! drains the daemon gracefully: the listener stops accepting, open
//! sessions finish, and [`ServerHandle::join`] then tears the hosted
//! backend down.
//!
//! ## Session I/O: the reactor
//!
//! By default ([`SessionMode::Reactor`]) session I/O is event driven: a
//! fixed pool of I/O threads ([`ServerConfig::io_threads`]) drives every
//! session's nonblocking socket through a [`crate::reactor::Poller`]
//! (epoll on Linux, `poll(2)` elsewhere).  Each session is an explicit
//! state machine — buffered partial-frame reads, a write queue the I/O
//! thread flushes as the socket allows (with a high-water mark that stops
//! *reading* from a client that is not draining its replies), and a
//! drain-aware close that lets queued replies leave before the socket
//! shuts.  Blocking backend calls never run on an I/O thread: they are
//! queued onto one shared, capped [`crate::reactor::WorkerPool`] per lane
//! ([`ServerConfig::workers`] threads each) —
//!
//! * the *submit* lane (submit, batch submit, delegations in), whose
//!   jobs may block on the live backend's admission window,
//! * the *redeem* lane (wait, federated polls and releases), whose jobs
//!   resolve by pipeline progress or bounded peer I/O alone, and
//! * the *teardown* lane (session settles for closed connections), so a
//!   mass disconnect never spawns a thread per closing session —
//!
//! kept separate so a lane full of window-blocked submissions can never
//! starve the redemptions (or the releases clients interleave with them)
//! that would free those very permits.  Completions
//! are posted back to the owning session's write queue and the I/O thread
//! is woken to flush them.  The listener itself is one more readiness
//! source on the first I/O thread — there is no dedicated accept thread —
//! and that thread's timer wheel also drives the periodic anti-entropy
//! gossip tick for a federated daemon.  The daemon's thread count is
//! therefore *independent of its session count*: the I/O pool + three
//! worker lanes + the hosted backend, whether two clients are connected
//! or two thousand.
//!
//! [`SessionMode::ThreadPerSession`] keeps the legacy deployment — one OS
//! thread per connected session plus a per-request worker thread for every
//! blocking call — for platforms without a poller and as a baseline the
//! benches compare against.  Both modes serve the identical protocol and
//! pass the identical test suite.
//!
//! # Client
//!
//! [`RemoteBackend::connect`] performs the protocol's version negotiation
//! and then implements the whole trait over the socket.  A background
//! reader thread routes response frames to the requests that sent them, so
//! any number of client threads (or one thread holding many tickets) share
//! the connection.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use actyp_proto::{
    negotiate, read_client_frame, read_server_frame, write_frame, ClientFrame, ServerFrame,
    MAX_SEQUENCE_LEN, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use actyp_query::Query;

use crate::allocation::{Allocation, AllocationError};
use crate::api::{QueryOutcome, ResourceManager, StatsSnapshot, Ticket};
use crate::message::{RequestId, RequestIdGenerator, StageAddress};
use crate::reactor::PollerKind;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Upper bound on blocking requests (submits/waits) in flight per session;
/// a request beyond it is answered with an error, so one connection cannot
/// exhaust the daemon's threads (legacy mode, where each blocking request
/// is a thread) or flood the shared worker queues (reactor mode, where
/// each is a queued job).
const MAX_SESSION_WORKERS: usize = 256;

/// How the daemon drives session I/O.  See the module docs for the full
/// picture of the two architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionMode {
    /// Event-driven sessions: a fixed I/O-thread pool drives nonblocking
    /// sockets through a readiness poller; blocking backend calls run on
    /// shared, capped worker lanes.  Thread count is independent of
    /// session count.  The default.
    #[default]
    Reactor,
    /// Legacy sessions: one OS thread per connection plus a worker thread
    /// per blocking request.  The fallback where no poller exists, and the
    /// baseline the benches compare the reactor against.
    ThreadPerSession,
}

impl std::fmt::Display for SessionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionMode::Reactor => "reactor",
            SessionMode::ThreadPerSession => "threaded",
        })
    }
}

impl std::str::FromStr for SessionMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "reactor" => Ok(SessionMode::Reactor),
            "threaded" => Ok(SessionMode::ThreadPerSession),
            other => Err(format!(
                "unknown session mode `{other}` (expected reactor or threaded)"
            )),
        }
    }
}

/// Server-side knobs: how session I/O is driven and how many threads the
/// daemon spends on it.  The defaults suit a daemon on a small host; raise
/// [`ServerConfig::io_threads`] and [`ServerConfig::workers`] together
/// with core count and backend latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Session I/O architecture.  [`SessionMode::Reactor`] silently falls
    /// back to [`SessionMode::ThreadPerSession`] only on platforms with no
    /// poller at all (non-unix).
    pub mode: SessionMode,
    /// Reactor I/O threads (clamped to at least 1).  Sessions are
    /// distributed round-robin across them at accept time.
    pub io_threads: usize,
    /// Worker threads *per lane* (submit, redeem and teardown lanes,
    /// clamped to at least 1 each): the cap on concurrently executing
    /// blocking backend calls in reactor mode.
    pub workers: usize,
    /// Which readiness poller the I/O threads use.
    pub poller: PollerKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: SessionMode::default(),
            io_threads: 2,
            workers: 4,
            poller: PollerKind::Auto,
        }
    }
}

/// How often an idle session checks the daemon's drain flag.  Sessions
/// block on the socket between frames; without this bound a drain would
/// wait forever on idle-but-connected clients — in particular the pooled
/// peer links other federated daemons hold open indefinitely.
const SESSION_POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Per-read deadline while a started frame is being received.  A client
/// that begins a frame and then stalls completely would otherwise hold
/// the session thread (and a drain) hostage with an unbounded read.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(30);

struct ServerShared {
    manager: Box<dyn ResourceManager>,
    /// Present when this daemon is federated: the same backend the
    /// sessions serve, kept concretely typed so incoming
    /// [`ClientFrame::Delegate`] / [`ClientFrame::SyncPools`] frames from
    /// peer daemons reach the federation surface the trait does not carry.
    federation: Option<Arc<crate::federation::FederatedBackend>>,
    draining: AtomicBool,
    wake_addr: SocketAddr,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    /// Sessions that panicked and were reaped before [`ServerHandle::join`]
    /// ran; counted so the panic still surfaces at join time.
    reaped_panics: AtomicU64,
    /// Legacy mode's anti-entropy gossip thread (reactor mode drives the
    /// tick from an I/O thread's timer wheel instead).  Taken at join.
    gossip: Mutex<Option<JoinHandle<()>>>,
    /// The reactor session engine, when [`SessionMode::Reactor`] is
    /// active; `None` in thread-per-session mode.  Taken at join time.
    #[cfg(unix)]
    reactor: Mutex<Option<ReactorEngine>>,
    /// Frames that rode a multi-frame lane batch (one queue send, one
    /// worker wakeup for the whole batch).  Reactor mode only; overlaid
    /// on every `Stats` reply.
    frames_batched: AtomicU64,
    /// Flushes that drained more than one queued frame with a single
    /// coalesced socket write.  Reactor mode only.
    writes_coalesced: AtomicU64,
}

impl ServerShared {
    /// Flags the drain and wakes everything that could be blocked past it:
    /// the reactor I/O threads (so idle sessions are closed and settled)
    /// and the blocking `accept`, poked awake with a dummy connection.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        #[cfg(unix)]
        if let Some(engine) = &*self.reactor.lock() {
            for io in &engine.io {
                io.notify.wake();
            }
        }
        let _ = TcpStream::connect(self.wake_addr);
    }
}

/// A running `ypd` server.  Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::halt`] then [`ServerHandle::join`] for a graceful
/// drain (or let a client send [`ClientFrame::Halt`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The address the daemon actually listens on (resolves port 0 binds).
    pub fn local_addr(&self) -> StageAddress {
        StageAddress::new(self.addr.ip().to_string(), self.addr.port())
    }

    /// Asks the daemon to drain: stop accepting new connections and let the
    /// open sessions run to completion.  Idempotent.
    pub fn halt(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the daemon has fully drained (accept loop stopped and
    /// every session finished — sessions end when their client disconnects
    /// or shuts its session down; during a drain, sessions idle between
    /// frames are ended and settled too, so a daemon with pooled peer
    /// links or forgotten clients still stops), then tears the hosted
    /// backend down and surfaces any stage worker panics.  Call
    /// [`ServerHandle::halt`] first, or this blocks until a client halts
    /// the daemon.
    ///
    /// Every teardown step runs even when an earlier one failed — the
    /// hosted backend is always shut down — and all problems are reported
    /// together.
    pub fn join(self) -> Result<(), AllocationError> {
        let mut problems: Vec<String> = Vec::new();
        // The handle slots are taken in their own statements so the
        // mutexes drop *before* the joins: an `if let` scrutinee's
        // temporary guard would otherwise be held across the whole join.
        let accept_handle = self.accept.lock().take();
        if let Some(handle) = accept_handle {
            if handle.join().is_err() {
                problems.push("ypd accept loop panicked".to_string());
            }
        }
        let gossip_handle = self.shared.gossip.lock().take();
        if let Some(handle) = gossip_handle {
            if handle.join().is_err() {
                problems.push("ypd gossip thread panicked".to_string());
            }
        }
        // Reactor engine teardown: the I/O threads exit once every session
        // is closed, the per-session teardowns finish settling, and the
        // worker lanes stop after their queues drain.
        #[cfg(unix)]
        {
            let engine = self.shared.reactor.lock().take();
            if let Some(engine) = engine {
                for io in engine.io {
                    io.notify.wake();
                    if io.thread.join().is_err() {
                        problems.push("ypd I/O thread panicked".to_string());
                    }
                }
                let worker_panics = engine.pools.submit.shutdown()
                    + engine.pools.redeem.shutdown()
                    + engine.pools.teardown.shutdown();
                if worker_panics > 0 {
                    problems.push(format!("{worker_panics} ypd worker job(s) panicked"));
                }
            }
        }
        let sessions: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.sessions.lock());
        let mut panicked = self.shared.reaped_panics.load(Ordering::Relaxed);
        for session in sessions {
            if session.join().is_err() {
                panicked += 1;
            }
        }
        if panicked > 0 {
            problems.push(format!(
                "{panicked} ypd session(s) panicked during the daemon's lifetime"
            ));
        }
        if let Err(e) = self.shared.manager.shutdown() {
            problems.push(e.to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(AllocationError::Internal(problems.join("; ")))
        }
    }
}

/// Binds `addr` and serves `manager` over the wire protocol until halted,
/// with the default [`ServerConfig`] (reactor sessions).
///
/// `addr.port == 0` binds an ephemeral port; read it back with
/// [`ServerHandle::local_addr`].
pub fn serve(
    manager: Box<dyn ResourceManager>,
    addr: &StageAddress,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(manager, None, addr, ServerConfig::default())
}

/// [`serve`] with explicit server-side knobs (session mode, I/O-thread and
/// worker-lane sizes, poller choice).
pub fn serve_with(
    manager: Box<dyn ResourceManager>,
    addr: &StageAddress,
    config: ServerConfig,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(manager, None, addr, config)
}

/// Binds `addr` and serves a *federated* backend: the full client protocol
/// plus the inter-daemon [`ClientFrame::Delegate`] /
/// [`ClientFrame::SyncPools`] vocabulary peer daemons speak.  The backend
/// is shared — the caller keeps its `Arc` for inspection (an `Arc` of a
/// manager is itself a manager).
pub fn serve_federated(
    backend: Arc<crate::federation::FederatedBackend>,
    addr: &StageAddress,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(
        Box::new(backend.clone()),
        Some(backend),
        addr,
        ServerConfig::default(),
    )
}

/// [`serve_federated`] with explicit server-side knobs.
pub fn serve_federated_with(
    backend: Arc<crate::federation::FederatedBackend>,
    addr: &StageAddress,
    config: ServerConfig,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(Box::new(backend.clone()), Some(backend), addr, config)
}

fn serve_inner(
    manager: Box<dyn ResourceManager>,
    federation: Option<Arc<crate::federation::FederatedBackend>>,
    addr: &StageAddress,
    config: ServerConfig,
) -> Result<ServerHandle, AllocationError> {
    let listener = TcpListener::bind((addr.host.as_str(), addr.port))
        .map_err(|e| AllocationError::Network(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| AllocationError::Network(format!("local_addr: {e}")))?;
    // The wake connection must reach the listener even when it is bound to
    // the unspecified address — via the loopback of the same family (an
    // IPv6-only listener never accepts an IPv4 wake).
    let wake_addr = if local.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if local.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        SocketAddr::new(loopback, local.port())
    } else {
        local
    };
    let shared = Arc::new(ServerShared {
        manager,
        federation,
        draining: AtomicBool::new(false),
        wake_addr,
        sessions: Mutex::new(Vec::new()),
        reaped_panics: AtomicU64::new(0),
        gossip: Mutex::new(None),
        #[cfg(unix)]
        reactor: Mutex::new(None),
        frames_batched: AtomicU64::new(0),
        writes_coalesced: AtomicU64::new(0),
    });

    // Reactor mode: the listener is handed to the engine itself — the
    // first I/O thread polls it as one more readiness source, so there is
    // no dedicated accept thread — and the same thread's timer wheel
    // drives the anti-entropy gossip tick.  Where a poller exists reactor
    // mode is honoured or fails loudly; a platform with no poller at all
    // falls back to thread-per-session below.
    #[cfg(unix)]
    if config.mode == SessionMode::Reactor {
        let engine = ReactorEngine::start(&shared, &config, listener)
            .map_err(|e| AllocationError::Network(format!("reactor setup: {e}")))?;
        *shared.reactor.lock() = Some(engine);
        return Ok(ServerHandle {
            addr: local,
            shared,
            accept: Mutex::new(None),
        });
    }

    // Legacy mode: the periodic duties (anti-entropy gossip tick, peer
    // health probe) share one thread, sleeping in short slices so a
    // drain ends it promptly.  Reactor mode drives both off the listener
    // thread's timer wheel instead.
    if let Some(federation) = &shared.federation {
        let gossip_interval = federation.gossip_interval();
        let probe_interval = federation.probe_interval();
        if gossip_interval > Duration::ZERO || probe_interval > Duration::ZERO {
            let federation = federation.clone();
            let gossip_shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name("ypd-gossip".to_string())
                .spawn(move || {
                    let started = std::time::Instant::now();
                    let mut last_gossip = started;
                    let mut last_probe = started;
                    loop {
                        if gossip_shared.draining.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                        if gossip_shared.draining.load(Ordering::SeqCst) {
                            return;
                        }
                        let now = std::time::Instant::now();
                        if gossip_interval > Duration::ZERO
                            && now.duration_since(last_gossip) >= gossip_interval
                        {
                            last_gossip = now;
                            federation.gossip_tick();
                        }
                        if probe_interval > Duration::ZERO
                            && now.duration_since(last_probe) >= probe_interval
                        {
                            last_probe = now;
                            federation.probe_peers();
                        }
                    }
                })
                .map_err(|e| AllocationError::Network(format!("gossip thread: {e}")))?;
            *shared.gossip.lock() = Some(handle);
        }
    }

    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let session_shared = accept_shared.clone();
            let handle = std::thread::spawn(move || run_session(session_shared, stream));
            // Reap finished sessions so a long-lived daemon serving many
            // short connections does not accumulate handles forever.
            // The handles are pulled out under the lock but joined after
            // releasing it — they have already finished, so the joins
            // cannot block, but teardown also takes this lock and must
            // never queue behind even a fast join.
            let mut finished = Vec::new();
            {
                let mut sessions = accept_shared.sessions.lock();
                let mut index = 0;
                while index < sessions.len() {
                    if sessions[index].is_finished() {
                        finished.push(sessions.swap_remove(index));
                    } else {
                        index += 1;
                    }
                }
                sessions.push(handle);
            }
            // Joining each reaped handle keeps their panics from vanishing.
            for reaped in finished {
                if reaped.join().is_err() {
                    accept_shared.reaped_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });

    Ok(ServerHandle {
        addr: local,
        shared,
        accept: Mutex::new(Some(accept)),
    })
}

// ---------------------------------------------------------------------------
// The reactor session engine
// ---------------------------------------------------------------------------
//
// A fixed pool of I/O threads drives every session's nonblocking socket
// through a `reactor::Poller`.  Each session is an explicit state machine
// (`ReactorSession`); blocking backend calls run on the two shared worker
// lanes and post their replies into the owning session's `OutQueue`, waking
// that session's I/O thread through its `IoNotify`.

#[cfg(unix)]
mod engine {
    use super::*;
    use crate::reactor::{Event, Interest, Poller, TimerWheel, Waker, WorkerPool};
    use actyp_proto::{WireDecode, MAX_FRAME_LEN};
    use std::collections::HashSet;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    /// Poller token reserved for the I/O thread's waker pipe.
    const WAKE_TOKEN: u64 = u64::MAX;

    /// Poller token reserved for the daemon's listening socket (registered
    /// on the first I/O thread only).
    const LISTENER_TOKEN: u64 = u64::MAX - 1;

    /// Timer-wheel id of the periodic closing-session sweep.
    const SWEEP_TIMER: u64 = 1;

    /// Timer-wheel id of the periodic anti-entropy gossip tick (armed on
    /// the listener thread of a federated daemon only).
    const GOSSIP_TIMER: u64 = 2;

    /// Timer-wheel id of the periodic peer-link health probe (armed on
    /// the listener thread of a federated daemon only).  Probing off the
    /// timer wheel notices a dead peer between delegations, so the next
    /// chain never spends a candidate slot (and a reply timeout) on it.
    const PROBE_TIMER: u64 = 3;

    /// Upper bound on queued-but-unsent reply bytes before the session
    /// stops *reading*: a client that pipelines requests without draining
    /// replies is backpressured instead of ballooning the daemon's memory.
    const OUT_HIGH_WATER: usize = 1 << 20;

    /// How many bytes one readable event may pull off a single socket
    /// before yielding to the other sessions on the same I/O thread
    /// (level-triggered polling re-delivers the event if more is waiting).
    /// This caps bytes *per event*, never the session's total buffer — a
    /// frame larger than one burst (the protocol allows up to
    /// [`MAX_FRAME_LEN`]) accumulates across events and must always be
    /// able to complete.
    const READ_BURST: usize = 256 * 1024;

    /// How long a closing session may keep flushing queued replies to a
    /// client that is not reading them before the socket is cut anyway.
    /// Measured from the moment the teardown seals the write queue, so a
    /// well-behaved client always gets its drain; only a stalled one is
    /// dropped — without this, one such client would wedge the I/O
    /// thread's exit and [`ServerHandle::join`] forever.
    const CLOSE_FLUSH_GRACE: Duration = Duration::from_secs(5);

    /// How often the I/O thread sweeps its closing sessions for the
    /// [`CLOSE_FLUSH_GRACE`] deadline (a stalled client produces no
    /// events of its own to trigger the check).
    const CLOSING_SWEEP_INTERVAL: Duration = Duration::from_millis(250);

    /// A session buffer (read or write) whose capacity ballooned past this
    /// is shrunk back once it empties: `Vec::clear`/`drain` keep their
    /// peak allocation, and a long-lived idle session pinning megabytes
    /// from one historical burst works against the whole point of holding
    /// many idle sessions cheaply.
    const BUF_SHRINK_THRESHOLD: usize = 64 * 1024;

    /// Safety-net poll timeout: wakeups normally arrive via the waker, but
    /// the drain flag is also re-checked at least this often.
    const IO_POLL_INTERVAL: Duration = Duration::from_millis(500);

    /// Cross-thread doorbell for one I/O thread: worker lanes mark the
    /// sessions whose write queues they touched and ring the waker; the
    /// I/O thread drains the set and flushes exactly those sessions.
    pub(super) struct IoNotify {
        dirty: Mutex<HashSet<u64>>,
        waker: Waker,
    }

    impl IoNotify {
        fn new() -> std::io::Result<Self> {
            Ok(IoNotify {
                dirty: Mutex::new(HashSet::new()),
                waker: Waker::new()?,
            })
        }

        fn mark_dirty(&self, token: u64) {
            self.dirty.lock().insert(token);
            self.waker.wake();
        }

        fn take_dirty(&self) -> Vec<u64> {
            self.dirty.lock().drain().collect()
        }

        pub(super) fn wake(&self) {
            self.waker.wake();
        }
    }

    /// The write side of one reactor session: frames are encoded into this
    /// byte queue by whoever produces them (I/O thread, worker lane,
    /// teardown) and flushed by the owning I/O thread as the socket
    /// allows.
    pub(super) struct OutQueue {
        token: u64,
        notify: Arc<IoNotify>,
        buf: Mutex<OutBuf>,
    }

    #[derive(Default)]
    struct OutBuf {
        data: Vec<u8>,
        sent: usize,
        /// Frames currently queued (encoded into `data` and not yet fully
        /// flushed) — lets the flush tell a coalesced multi-frame write
        /// from a singleton.
        frames: usize,
        /// When the teardown sealed the queue (no more frames will ever
        /// be queued); also starts the [`CLOSE_FLUSH_GRACE`] clock.
        closed_at: Option<std::time::Instant>,
    }

    impl OutBuf {
        fn closed(&self) -> bool {
            self.closed_at.is_some()
        }

        /// Resets the queue after a complete flush, returning oversized
        /// capacity to the allocator.
        fn reset(&mut self) {
            self.data.clear();
            if self.data.capacity() > BUF_SHRINK_THRESHOLD {
                self.data.shrink_to(BUF_SHRINK_THRESHOLD);
            }
            self.sent = 0;
            self.frames = 0;
        }
    }

    impl OutQueue {
        /// Appends one frame (best effort, exactly like the legacy direct
        /// send: an unencodable frame is dropped, a closed queue swallows
        /// it) and rings the session's I/O thread.
        pub(super) fn push(&self, frame: &ServerFrame) {
            {
                let mut buf = self.buf.lock();
                if buf.closed() {
                    return;
                }
                // Writing into a Vec cannot fail; `write_frame` refuses an
                // over-limit frame before emitting any byte, so a failed
                // push leaves the queue intact.
                // lint-allow(lock-across-blocking): in-memory Vec sink, never blocks
                if write_frame(&mut buf.data, frame).is_ok() {
                    buf.frames += 1;
                }
            }
            self.notify.mark_dirty(self.token);
        }

        /// Marks the queue closed (no more frames will ever be queued) and
        /// rings the I/O thread so it can finish the drain-aware close.
        fn close(&self) {
            let mut buf = self.buf.lock();
            if buf.closed_at.is_none() {
                buf.closed_at = Some(std::time::Instant::now());
            }
            drop(buf);
            self.notify.mark_dirty(self.token);
        }

        fn pending_bytes(&self) -> usize {
            let buf = self.buf.lock();
            buf.data.len() - buf.sent
        }

        fn is_closed(&self) -> bool {
            self.buf.lock().closed()
        }

        /// Whether the queue was sealed longer than `grace` ago — the
        /// point past which a client that will not drain its replies is
        /// cut instead of holding the session (and the drain) open.
        fn sealed_longer_than(&self, grace: Duration) -> bool {
            matches!(self.buf.lock().closed_at, Some(at) if at.elapsed() > grace)
        }
    }

    /// The two worker lanes for blocking backend calls.  They are separate
    /// pools because their blocking has different *causes*: submit-lane
    /// jobs (submits, batches, incoming delegations) can block on the
    /// live backend's admission window, whose permits only redemptions
    /// free — a single shared pool saturated with window-blocked
    /// submissions would starve the very waits that unblock it.
    /// Redeem-lane jobs (waits, federated polls and releases) resolve by
    /// pipeline progress or bounded peer I/O alone, never by the window;
    /// everything a client must complete in order to *return* capacity
    /// lives here, so the lane always drains.
    pub(super) struct Pools {
        pub(super) submit: WorkerPool,
        pub(super) redeem: WorkerPool,
        /// Session teardowns (settle abandoned tickets, sweep leases,
        /// seal the write queue).  A lane rather than a thread per
        /// closing session: a mass disconnect — or the drain itself —
        /// would otherwise spawn one thread per session in a burst,
        /// reintroducing thread-count-proportional-to-session-count at
        /// exactly the moment the daemon is busiest.  Teardown jobs never
        /// wait on each other (they wait on the submit/redeem lanes and
        /// on bounded backend deadlines), so the lane always drains.
        pub(super) teardown: WorkerPool,
    }

    /// Which lane a blocking request runs on.
    #[derive(Clone, Copy)]
    enum Lane {
        Submit,
        Redeem,
    }

    /// One I/O thread's handle: where accepted sockets are sent, and the
    /// doorbell that wakes the thread to collect them.
    pub(super) struct IoHandle {
        /// Held (not used) so the thread's socket channel stays connected
        /// even after the listener thread — which owns the dispatching
        /// clones — has exited during a drain.
        _tx: Sender<TcpStream>,
        pub(super) notify: Arc<IoNotify>,
        pub(super) thread: JoinHandle<()>,
    }

    /// The first I/O thread's extra duty: the daemon's listening socket,
    /// registered with that thread's poller as one more readiness source.
    /// Ready connections are accepted nonblockingly and dealt round robin
    /// to every I/O thread (itself included) over the same channels the
    /// old dedicated accept thread used — folding the accept loop into
    /// the reactor removes one always-blocked thread per daemon.
    pub(super) struct ListenerRole {
        listener: TcpListener,
        targets: Vec<(Sender<TcpStream>, Arc<IoNotify>)>,
        next: usize,
    }

    /// The running reactor: I/O threads, worker lanes, teardown tracker.
    pub(super) struct ReactorEngine {
        pub(super) io: Vec<IoHandle>,
        pub(super) pools: Arc<Pools>,
    }

    impl ReactorEngine {
        /// Spawns the worker lanes and `config.io_threads` I/O threads,
        /// each with its own poller and waker.  The listener rides the
        /// first thread.
        pub(super) fn start(
            shared: &Arc<ServerShared>,
            config: &ServerConfig,
            listener: TcpListener,
        ) -> std::io::Result<ReactorEngine> {
            listener.set_nonblocking(true)?;
            let pools = Arc::new(Pools {
                submit: WorkerPool::new("ypd-submit", config.workers),
                redeem: WorkerPool::new("ypd-redeem", config.workers),
                teardown: WorkerPool::new("ypd-teardown", config.workers),
            });
            // Every thread's poller, doorbell and socket channel exist
            // before any thread starts: the listener thread needs the
            // full target list for round-robin dispatch.
            let mut parts = Vec::new();
            let created: std::io::Result<()> = (|| {
                for _ in 0..config.io_threads.max(1) {
                    let poller = config.poller.create()?;
                    let notify = Arc::new(IoNotify::new()?);
                    let (tx, rx) = unbounded::<TcpStream>();
                    parts.push((poller, notify, tx, rx));
                }
                Ok(())
            })();
            if let Err(e) = created {
                pools.submit.shutdown();
                pools.redeem.shutdown();
                pools.teardown.shutdown();
                return Err(e);
            }
            let targets: Vec<(Sender<TcpStream>, Arc<IoNotify>)> = parts
                .iter()
                .map(|(_, notify, tx, _)| (tx.clone(), notify.clone()))
                .collect();
            let mut listener = Some(listener);
            let mut io: Vec<IoHandle> = Vec::new();
            for (i, (poller, notify, tx, rx)) in parts.into_iter().enumerate() {
                let role = listener.take().map(|listener| ListenerRole {
                    listener,
                    targets: targets.clone(),
                    next: 0,
                });
                let spawned = std::thread::Builder::new()
                    .name(format!("ypd-io-{i}"))
                    .spawn({
                        let shared = shared.clone();
                        let pools = pools.clone();
                        let notify = notify.clone();
                        move || io_thread_main(shared, pools, rx, notify, poller, role)
                    });
                match spawned {
                    Ok(thread) => io.push(IoHandle {
                        _tx: tx,
                        notify,
                        thread,
                    }),
                    Err(e) => {
                        // Unwind the threads already spawned: flag the
                        // drain so they exit, then report the failure.
                        shared.draining.store(true, Ordering::SeqCst);
                        for handle in io {
                            handle.notify.wake();
                            let _ = handle.thread.join();
                        }
                        pools.submit.shutdown();
                        pools.redeem.shutdown();
                        pools.teardown.shutdown();
                        shared.draining.store(false, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            Ok(ReactorEngine { io, pools })
        }
    }

    /// Where one reactor session is in its life.
    enum Phase {
        /// Connected; the first frame must be a `Hello`.
        AwaitingHello,
        /// Handshake done; frames are parsed and dispatched.
        Serving,
        /// No more frames are read.  The session teardown is settling
        /// tickets on its own thread; the socket closes once the teardown
        /// marks the write queue closed and every queued byte is flushed
        /// (drain-aware close) — or immediately once the client is gone.
        Closing,
    }

    /// One connection, as the state machine its I/O thread drives.
    struct ReactorSession {
        stream: TcpStream,
        state: Arc<SessionState>,
        queue: Arc<OutQueue>,
        phase: Phase,
        /// Bytes received but not yet parsed into frames (partial frames
        /// accumulate here across readable events).
        read_buf: Vec<u8>,
        /// Interest currently registered with the poller.
        interest: Interest,
        /// The peer disconnected (EOF or transport error): close without
        /// waiting to flush.
        client_gone: bool,
    }

    impl ReactorSession {
        fn desired_interest(&self) -> Interest {
            let pending = self.queue.pending_bytes();
            match self.phase {
                // Keep reading while closing only to observe EOF promptly
                // (bytes are discarded); stop reading frames from a client
                // that is not draining its replies.
                Phase::Closing => Interest {
                    read: true,
                    write: pending > 0,
                },
                _ => Interest {
                    read: pending <= OUT_HIGH_WATER,
                    write: pending > 0,
                },
            }
        }

        /// The drain-aware close condition: the teardown has sealed the
        /// queue and everything queued has left — or the client vanished
        /// and there is nobody to flush to — or the client has refused to
        /// drain its replies for [`CLOSE_FLUSH_GRACE`] past the seal, in
        /// which case it is cut rather than allowed to wedge the drain.
        fn finished(&self) -> bool {
            matches!(self.phase, Phase::Closing)
                && (self.client_gone
                    || (self.queue.is_closed()
                        && (self.queue.pending_bytes() == 0
                            || self.queue.sealed_longer_than(CLOSE_FLUSH_GRACE))))
        }
    }

    fn would_block(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    }

    /// Decrements the owning session's lane counter when a job finishes —
    /// by panic as much as by return, so a panicking backend cannot wedge
    /// the session teardown that waits for the count to reach zero.
    struct JobGuard {
        state: Arc<SessionState>,
        lane: Lane,
    }

    impl Drop for JobGuard {
        fn drop(&mut self) {
            let counter = match self.lane {
                Lane::Submit => &self.state.submit_jobs,
                Lane::Redeem => &self.state.redeem_jobs,
            };
            counter.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The blocking jobs decoded from one readable event, collected per
    /// lane and dispatched with one [`WorkerPool::execute_batch`] each —
    /// one queue send and one worker wakeup for the whole batch instead
    /// of one per frame.  A batch stays on one worker in arrival order,
    /// which is exactly the per-session ordering the frames had anyway;
    /// different sessions' batches still spread across the lane's
    /// workers.
    #[derive(Default)]
    struct LaneBatch {
        submit: Vec<Box<dyn FnOnce() + Send>>,
        redeem: Vec<Box<dyn FnOnce() + Send>>,
    }

    impl LaneBatch {
        /// Hands each lane's collected jobs to its pool and counts the
        /// frames that actually rode a multi-frame batch.
        fn flush(self, shared: &ServerShared, pools: &Pools) {
            for (jobs, pool) in [(self.submit, &pools.submit), (self.redeem, &pools.redeem)] {
                if jobs.len() > 1 {
                    shared
                        .frames_batched
                        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                }
                pool.execute_batch(jobs);
            }
        }
    }

    /// Queues one blocking request on a worker lane's batch, bounded per
    /// session: past [`MAX_SESSION_WORKERS`] in flight on the lane, the
    /// request is answered with an overload error instead — one
    /// connection cannot flood the shared queues any more than it could
    /// spawn unbounded threads in legacy mode.  The per-session counter
    /// is claimed here, at decode time, so the cap holds even while the
    /// batch is still being collected.
    fn spawn_job(
        batch: &mut LaneBatch,
        lane: Lane,
        state: &Arc<SessionState>,
        corr: RequestId,
        job: impl FnOnce() + Send + 'static,
    ) {
        let counter = match lane {
            Lane::Submit => &state.submit_jobs,
            Lane::Redeem => &state.redeem_jobs,
        };
        if counter.load(Ordering::Relaxed) >= MAX_SESSION_WORKERS {
            state.send(&session_overloaded(corr));
            return;
        }
        counter.fetch_add(1, Ordering::Relaxed);
        let guard = JobGuard {
            state: state.clone(),
            lane,
        };
        let jobs = match lane {
            Lane::Submit => &mut batch.submit,
            Lane::Redeem => &mut batch.redeem,
        };
        jobs.push(Box::new(move || {
            let _guard = guard;
            job();
        }));
    }

    /// One I/O thread: polls its sessions' sockets (plus, on the first
    /// thread, the daemon's listener), parses frames, dispatches work,
    /// flushes write queues, fires its timers, and retires sessions.
    fn io_thread_main(
        shared: Arc<ServerShared>,
        pools: Arc<Pools>,
        incoming: Receiver<TcpStream>,
        notify: Arc<IoNotify>,
        mut poller: Box<dyn Poller>,
        mut role: Option<ListenerRole>,
    ) {
        // If waker registration fails the thread still functions — the
        // poll interval bounds how stale a wakeup can go.
        let _ = poller.register(notify.waker.read_fd(), WAKE_TOKEN, Interest::READ);
        if let Some(role) = &role {
            let _ = poller.register(role.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
        }
        let mut wheel = TimerWheel::new();
        wheel.add_periodic(SWEEP_TIMER, CLOSING_SWEEP_INTERVAL);
        // The anti-entropy gossip tick is armed on the listener thread
        // only (exactly one per daemon).  The tick itself runs on the
        // redeem lane — a peer exchange is bounded peer I/O, never
        // admission-window blocking — guarded so a round slower than the
        // interval is skipped, not stacked.
        let gossip_running = Arc::new(AtomicBool::new(false));
        // The health probe follows the same discipline on its own timer:
        // listener thread only, runs on the redeem lane, skipped (not
        // stacked) when a round outlasts its interval.
        let probe_running = Arc::new(AtomicBool::new(false));
        if role.is_some() {
            if let Some(federation) = &shared.federation {
                let interval = federation.gossip_interval();
                if interval > Duration::ZERO {
                    wheel.add_periodic(GOSSIP_TIMER, interval);
                }
                let probe = federation.probe_interval();
                if probe > Duration::ZERO {
                    wheel.add_periodic(PROBE_TIMER, probe);
                }
            }
        }
        let mut sessions: HashMap<u64, ReactorSession> = HashMap::new();
        let mut next_token: u64 = 0;
        let mut events: Vec<Event> = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        loop {
            if shared.draining.load(Ordering::SeqCst) && sessions.is_empty() {
                break;
            }
            let timeout = wheel.poll_timeout(IO_POLL_INTERVAL);
            if poller.poll(&mut events, Some(timeout)).is_err() {
                // A failing poller must not hot-loop the thread.
                std::thread::sleep(Duration::from_millis(5));
            }
            notify.waker.drain();
            touched.clear();

            // New connections dealt over from the listener thread
            // (refused once a drain began — the dispatch race can hand
            // over a late socket).
            while let Ok(stream) = incoming.try_recv() {
                if shared.draining.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    continue;
                }
                if let Some(token) = add_session(
                    &mut *poller,
                    &mut sessions,
                    &mut next_token,
                    &notify,
                    stream,
                ) {
                    touched.push(token);
                }
            }

            // Socket readiness.
            for event in events.iter().copied() {
                if event.token == WAKE_TOKEN {
                    continue;
                }
                if event.token == LISTENER_TOKEN {
                    if let Some(role) = role.as_mut() {
                        accept_ready(&shared, role);
                    }
                    continue;
                }
                let Some(session) = sessions.get_mut(&event.token) else {
                    continue;
                };
                if event.readable || event.closed {
                    handle_readable(&shared, &pools, session);
                }
                if (event.writable || event.closed) && !flush_session(&shared, session) {
                    session.client_gone = true;
                    begin_close(&shared, &pools, session);
                }
                touched.push(event.token);
            }

            // Write queues touched by worker lanes / teardowns.
            for token in notify.take_dirty() {
                if let Some(session) = sessions.get_mut(&token) {
                    if !flush_session(&shared, session) {
                        session.client_gone = true;
                        begin_close(&shared, &pools, session);
                    }
                    touched.push(token);
                }
            }

            // Timers.  The closing sweep touches sessions whose stalled
            // clients produce no events of their own, so the
            // CLOSE_FLUSH_GRACE deadline is actually observed; the gossip
            // timer queues one anti-entropy round.
            for timer in wheel.expired(std::time::Instant::now()) {
                match timer {
                    SWEEP_TIMER => {
                        for (token, session) in sessions.iter() {
                            if matches!(session.phase, Phase::Closing) {
                                touched.push(*token);
                            }
                        }
                    }
                    GOSSIP_TIMER => {
                        if shared.draining.load(Ordering::SeqCst) {
                            continue;
                        }
                        if let Some(federation) = &shared.federation {
                            if !gossip_running.swap(true, Ordering::SeqCst) {
                                let federation = federation.clone();
                                let guard = gossip_running.clone();
                                pools.redeem.execute(move || {
                                    federation.gossip_tick();
                                    guard.store(false, Ordering::SeqCst);
                                });
                            }
                        }
                    }
                    PROBE_TIMER => {
                        if shared.draining.load(Ordering::SeqCst) {
                            continue;
                        }
                        if let Some(federation) = &shared.federation {
                            if !probe_running.swap(true, Ordering::SeqCst) {
                                let federation = federation.clone();
                                let guard = probe_running.clone();
                                pools.redeem.execute(move || {
                                    federation.probe_peers();
                                    guard.store(false, Ordering::SeqCst);
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }

            // A drain closes every session still open (their teardowns
            // settle whatever the vanished or idle clients left behind).
            if shared.draining.load(Ordering::SeqCst) {
                for (token, session) in sessions.iter_mut() {
                    begin_close(&shared, &pools, session);
                    touched.push(*token);
                }
            }

            // Re-parse, retire, and re-register everything touched.
            touched.sort_unstable();
            touched.dedup();
            for token in touched.iter().copied() {
                refresh_session(&shared, &pools, &mut *poller, &mut sessions, token);
            }
        }
    }

    /// Drains every connection the listener has ready: during a drain
    /// each is refused outright; otherwise it is dealt to the next I/O
    /// thread round robin and that thread's doorbell rung.  The
    /// `begin_drain` dummy connection lands here too — accepted, dropped,
    /// and thereby done waking the poll.
    fn accept_ready(shared: &Arc<ServerShared>, role: &mut ListenerRole) {
        loop {
            match role.listener.accept() {
                Ok((stream, _)) => {
                    if shared.draining.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    let (tx, notify) = &role.targets[role.next % role.targets.len()];
                    role.next = role.next.wrapping_add(1);
                    if tx.send(stream).is_ok() {
                        notify.wake();
                    }
                }
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Registers a fresh connection as a session in the hello phase.
    fn add_session(
        poller: &mut dyn Poller,
        sessions: &mut HashMap<u64, ReactorSession>,
        next_token: &mut u64,
        notify: &Arc<IoNotify>,
        stream: TcpStream,
    ) -> Option<u64> {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let token = *next_token;
        *next_token += 1;
        let queue = Arc::new(OutQueue {
            token,
            notify: notify.clone(),
            buf: Mutex::new(OutBuf::default()),
        });
        if poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return None;
        }
        let state = SessionState::new(ReplySink::Queue(queue.clone()));
        sessions.insert(
            token,
            ReactorSession {
                stream,
                state,
                queue,
                phase: Phase::AwaitingHello,
                read_buf: Vec::new(),
                interest: Interest::READ,
                client_gone: false,
            },
        );
        Some(token)
    }

    /// Pulls available bytes (one bounded burst), parses complete frames,
    /// dispatches them, and begins the close on EOF — after parsing, so a
    /// client that submits and immediately hangs up still gets its work
    /// settled rather than dropped.
    fn handle_readable(
        shared: &Arc<ServerShared>,
        pools: &Arc<Pools>,
        session: &mut ReactorSession,
    ) {
        let mut chunk = [0u8; 16 * 1024];
        if matches!(session.phase, Phase::Closing) {
            // Discard whatever the client still sends; observe its EOF.
            // Bounded per event like the serving path: a client that
            // blasts bytes after close must not monopolize the I/O
            // thread for the other sessions' sake.
            let mut taken = 0usize;
            while taken < READ_BURST {
                match session.stream.read(&mut chunk) {
                    Ok(0) => {
                        session.client_gone = true;
                        break;
                    }
                    Ok(n) => taken += n,
                    Err(e) if would_block(&e) => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        session.client_gone = true;
                        break;
                    }
                }
            }
            return;
        }
        let mut eof = false;
        let mut taken = 0usize;
        while taken < READ_BURST {
            match session.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    taken += n;
                    session.read_buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        parse_and_dispatch(shared, pools, session);
        if eof {
            session.client_gone = true;
            begin_close(shared, pools, session);
        }
    }

    /// Parses every complete frame buffered for the session and
    /// dispatches it, stopping early when the write queue crosses the
    /// high-water mark (the leftovers stay buffered and are re-parsed
    /// once the queue drains).  Garbage — an over-limit length prefix or
    /// an undecodable body — ends the session, settled like any other.
    ///
    /// Blocking frames are *collected* across the whole parse loop and
    /// handed to the worker lanes as one batch per lane at the end — one
    /// queue send and one wakeup per readable event, however many frames
    /// the client pipelined into it.
    fn parse_and_dispatch(
        shared: &Arc<ServerShared>,
        pools: &Arc<Pools>,
        session: &mut ReactorSession,
    ) {
        let mut batch = LaneBatch::default();
        let mut pos = 0usize;
        loop {
            if matches!(session.phase, Phase::Closing) {
                break;
            }
            let available = &session.read_buf[pos..];
            if available.len() < 4 {
                break;
            }
            let declared =
                u32::from_be_bytes([available[0], available[1], available[2], available[3]])
                    as usize;
            if declared > MAX_FRAME_LEN {
                begin_close(shared, pools, session);
                break;
            }
            let Some(body) = available.get(4..4 + declared) else {
                break;
            };
            match ClientFrame::from_wire_bytes(body) {
                Ok(frame) => {
                    pos += 4 + declared;
                    dispatch_frame(shared, pools, session, &mut batch, frame);
                }
                Err(_) => {
                    begin_close(shared, pools, session);
                    break;
                }
            }
            if session.queue.pending_bytes() > OUT_HIGH_WATER {
                break;
            }
        }
        // Jobs collected before a mid-loop close still run — their
        // per-session counters are already claimed and the teardown's
        // settle loop waits for them.
        batch.flush(shared, pools);
        if matches!(session.phase, Phase::Closing) {
            // Nothing buffered will ever be parsed now (and a mid-loop
            // close may have replaced the buffer already): drop it whole
            // instead of draining against a stale offset.
            session.read_buf = Vec::new();
        } else if pos > 0 {
            session.read_buf.drain(..pos);
            if session.read_buf.is_empty() && session.read_buf.capacity() > BUF_SHRINK_THRESHOLD {
                session.read_buf.shrink_to(BUF_SHRINK_THRESHOLD);
            }
        }
    }

    /// Mirrors the legacy session's frame match, with blocking work queued
    /// on the worker lanes instead of spawned threads.
    fn dispatch_frame(
        shared: &Arc<ServerShared>,
        pools: &Arc<Pools>,
        session: &mut ReactorSession,
        batch: &mut LaneBatch,
        frame: ClientFrame,
    ) {
        let state = session.state.clone();
        if matches!(session.phase, Phase::AwaitingHello) {
            match frame {
                ClientFrame::Hello {
                    min_version,
                    max_version,
                } => match negotiate(min_version, max_version) {
                    Some(version) => {
                        state.send(&ServerFrame::HelloAck { version });
                        session.phase = Phase::Serving;
                    }
                    None => {
                        state.send(&ServerFrame::HelloReject {
                            message: format!(
                                "no common protocol version: client speaks \
                                 {min_version}..={max_version}, server speaks \
                                 {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}"
                            ),
                        });
                        begin_close(shared, pools, session);
                    }
                },
                _ => {
                    state.send(&ServerFrame::HelloReject {
                        message: "the first frame must be Hello".to_string(),
                    });
                    begin_close(shared, pools, session);
                }
            }
            return;
        }
        match frame {
            ClientFrame::Hello { .. } => {
                state.send(&ServerFrame::HelloReject {
                    message: "duplicate Hello".to_string(),
                });
                begin_close(shared, pools, session);
            }
            ClientFrame::Submit { corr, query } => {
                let shared = shared.clone();
                let job_state = state.clone();
                spawn_job(batch, Lane::Submit, &state, corr, move || {
                    handle_submit(&shared, &job_state, corr, &query)
                });
            }
            ClientFrame::SubmitBatch { corr, queries } => {
                let shared = shared.clone();
                let job_state = state.clone();
                spawn_job(batch, Lane::Submit, &state, corr, move || {
                    handle_submit_batch(&shared, &job_state, corr, &queries)
                });
            }
            ClientFrame::Wait {
                corr,
                ticket,
                deadline_ms,
            } => {
                // Unknown ids are answered inline — no job for a frame
                // that cannot block; the worker's own atomic claim still
                // decides races.
                if !state.tickets.lock().contains_key(&ticket) {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::UnknownTicket,
                    });
                    return;
                }
                let shared = shared.clone();
                let job_state = state.clone();
                spawn_job(batch, Lane::Redeem, &state, corr, move || {
                    handle_wait(&shared, &job_state, corr, ticket, deadline_ms)
                });
            }
            ClientFrame::Poll { corr, ticket } => {
                // Looked up in its own statement: a `match` scrutinee's
                // temporary guard would live through every arm, holding
                // the ticket table across the reply send.
                let looked_up = state.tickets.lock().get(&ticket).copied();
                let backend_ticket = match looked_up {
                    None => {
                        state.send(&ServerFrame::Error {
                            corr,
                            error: AllocationError::UnknownTicket,
                        });
                        return;
                    }
                    Some(backend_ticket) => backend_ticket,
                };
                let poll = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.try_poll(backend_ticket) {
                        None => state.send(&ServerFrame::Pending { corr }),
                        Some(outcome) => {
                            state.tickets.lock().remove(&ticket);
                            state.deliver_outcome(corr, outcome);
                        }
                    }
                };
                // On a federated daemon a poll can block on peer I/O, so
                // it runs on the redeem lane; in-process backends answer
                // inline on the I/O thread.
                if shared.federation.is_some() {
                    spawn_job(batch, Lane::Redeem, &state, corr, poll);
                } else {
                    poll();
                }
            }
            ClientFrame::Release { corr, allocation } => {
                let release = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.release(&allocation) {
                        Ok(()) => {
                            state.leases.lock().remove(&allocation.access_key.0);
                            state.send(&ServerFrame::Released { corr });
                        }
                        Err(error) => state.send(&ServerFrame::Error { corr, error }),
                    }
                };
                // Releasing a delegated allocation crosses the wire to
                // the owning domain: a worker keeps the I/O thread
                // responsive.  It rides the REDEEM lane, not the submit
                // lane: clients interleave releases with the very waits
                // that free admission-window permits, so a release queued
                // behind window-blocked submit jobs would deadlock the
                // whole daemon (client stuck awaiting the release reply →
                // no further waits → no permits freed → submits blocked
                // forever).  A release never blocks on the window itself —
                // only on bounded peer I/O — so it is safe on this lane.
                if shared.federation.is_some() {
                    spawn_job(batch, Lane::Redeem, &state, corr, release);
                } else {
                    release();
                }
            }
            ClientFrame::Stats { corr } => {
                // The backend fills its own counters; the transport
                // batching counters belong to the daemon and are
                // overlaid here (zero in thread-per-session mode, which
                // neither batches decodes nor coalesces flushes).
                let mut stats = shared.manager.stats();
                stats.frames_batched = shared.frames_batched.load(Ordering::Relaxed);
                stats.writes_coalesced = shared.writes_coalesced.load(Ordering::Relaxed);
                state.send(&ServerFrame::StatsReply { corr, stats });
            }
            ClientFrame::Shutdown { corr } => {
                state.send(&ServerFrame::Ack { corr });
                begin_close(shared, pools, session);
            }
            ClientFrame::Halt { corr } => {
                state.send(&ServerFrame::Ack { corr });
                shared.begin_drain();
                begin_close(shared, pools, session);
            }
            ClientFrame::Delegate {
                corr,
                query,
                ttl,
                visited,
            } => {
                let Some(federation) = shared.federation.clone() else {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::Protocol(
                            "this daemon is not federated (no --domain/--peer)".to_string(),
                        ),
                    });
                    return;
                };
                let job_state = state.clone();
                spawn_job(batch, Lane::Submit, &state, corr, move || {
                    let (outcome, routing) = federation.handle_delegate(&query, ttl, visited);
                    // Piggyback whatever gossip the delegating peer has
                    // not acknowledged yet on the reply it is already
                    // waiting for — a free anti-entropy round.
                    let deltas = match job_state.peer_domain.lock().clone() {
                        Some(peer) => federation.piggyback_deltas(&peer),
                        None => Vec::new(),
                    };
                    job_state.deliver_delegated(corr, outcome, routing, deltas);
                });
            }
            ClientFrame::SyncPools {
                corr,
                domain,
                pools: advertised,
                have,
            } => match &shared.federation {
                None => state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Protocol(
                        "this daemon is not federated (no --domain/--peer)".to_string(),
                    ),
                }),
                Some(federation) => {
                    note_peer_session_domain(shared, &state, &domain);
                    federation.record_inbound_advertisement(&domain, &advertised);
                    federation.gossip().note_peer_versions(&domain, &have);
                    federation.refresh_gossip();
                    let deltas = federation.gossip().deltas_since(&have);
                    state.send(&ServerFrame::PoolsSynced {
                        corr,
                        domain: federation.domain().to_string(),
                        pools: federation.local_pools(),
                        deltas,
                    });
                }
            },
            ClientFrame::AdvertDelta {
                corr,
                domain,
                deltas,
                have,
            } => match &shared.federation {
                None => state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Protocol(
                        "this daemon is not federated (no --domain/--peer)".to_string(),
                    ),
                }),
                Some(federation) => {
                    // Inline: applying deltas is pure in-memory state.
                    note_peer_session_domain(shared, &state, &domain);
                    let reply = federation.handle_advert_delta(&domain, &deltas, &have);
                    state.send(&ServerFrame::AdvertAck {
                        corr,
                        domain: federation.domain().to_string(),
                        deltas: reply,
                    });
                }
            },
        }
    }

    /// Transitions the session into [`Phase::Closing`] (idempotent) and
    /// spawns its teardown: the settle loop must not run on the I/O
    /// thread, because it blocks on backend outcomes.
    fn begin_close(shared: &Arc<ServerShared>, pools: &Arc<Pools>, session: &mut ReactorSession) {
        if matches!(session.phase, Phase::Closing) {
            return;
        }
        session.phase = Phase::Closing;
        let shared = shared.clone();
        let state = session.state.clone();
        let queue = session.queue.clone();
        pools
            .teardown
            .execute(move || teardown_session(&shared, &state, &queue));
    }

    /// The reactor-mode session teardown — the same interleaved
    /// settle-and-wait the legacy session runs, with lane job counters in
    /// place of worker thread handles: settle (freeing window permits a
    /// blocked submit job may be waiting on), wait for the jobs to finish
    /// (they may issue new tickets), repeat, then sweep the leases.  Seals
    /// the write queue at the end so the I/O thread can complete the
    /// drain-aware close.
    fn teardown_session(
        shared: &Arc<ServerShared>,
        state: &Arc<SessionState>,
        queue: &Arc<OutQueue>,
    ) {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            settle_abandoned_tickets(shared, state, deadline);
            if state.jobs_in_flight() == 0 {
                break;
            }
            if std::time::Instant::now() >= deadline {
                // Leave the stragglers to the worker lanes.  Settlement is
                // best-effort past this point, exactly as in legacy mode.
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        settle_abandoned_tickets(
            shared,
            state,
            std::time::Instant::now() + Duration::from_secs(5),
        );
        let leaked: Vec<Allocation> = state.leases.lock().drain().map(|(_, a)| a).collect();
        for allocation in &leaked {
            let _ = shared.manager.release(allocation);
        }
        queue.close();
    }

    /// Flushes as much of the session's write queue as the socket takes.
    /// Returns `false` when the transport is dead.
    fn flush_session(shared: &Arc<ServerShared>, session: &mut ReactorSession) -> bool {
        loop {
            let mut buf = session.queue.buf.lock();
            if buf.sent >= buf.data.len() {
                buf.reset();
                return true;
            }
            match session.stream.write(&buf.data[buf.sent..]) {
                Ok(0) => return false,
                Ok(n) => {
                    buf.sent += n;
                    if buf.sent >= buf.data.len() {
                        // One socket write just drained everything queued;
                        // if that was several frames, the flush coalesced
                        // them into a single write.
                        if buf.frames > 1 {
                            shared.writes_coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                        buf.reset();
                        return true;
                    }
                }
                Err(e) if would_block(&e) => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Post-pass for a touched session: re-parse frames a drained write
    /// queue unblocked, retire the session when its close completed, and
    /// re-register interest when it changed.
    fn refresh_session(
        shared: &Arc<ServerShared>,
        pools: &Arc<Pools>,
        poller: &mut dyn Poller,
        sessions: &mut HashMap<u64, ReactorSession>,
        token: u64,
    ) {
        let Some(session) = sessions.get_mut(&token) else {
            return;
        };
        if !matches!(session.phase, Phase::Closing)
            && !session.read_buf.is_empty()
            && session.queue.pending_bytes() <= OUT_HIGH_WATER
        {
            parse_and_dispatch(shared, pools, session);
        }
        if session.finished() {
            let session = sessions.remove(&token).expect("session just seen");
            let _ = poller.deregister(session.stream.as_raw_fd());
            let _ = session.stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let wanted = session.desired_interest();
        if wanted != session.interest
            && poller
                .reregister(session.stream.as_raw_fd(), token, wanted)
                .is_ok()
        {
            session.interest = wanted;
        }
    }
}

#[cfg(unix)]
use engine::{OutQueue, ReactorEngine};

/// Where a session's replies go: straight down the socket (legacy
/// thread-per-session mode, where blocking in `send` is fine) or into the
/// session's write queue for its I/O thread to flush (reactor mode, where
/// nothing on a worker may ever block on a peer's socket).
enum ReplySink {
    /// Legacy: a shared handle on the connection, written under a lock.
    Stream(Mutex<TcpStream>),
    /// Reactor: the session's write queue.
    #[cfg(unix)]
    Queue(Arc<OutQueue>),
}

/// Per-connection session state: the reply sink, the session-scoped
/// ticket table mapping wire ticket ids to backend tickets, and the
/// allocation leases the session currently holds.
struct SessionState {
    sink: ReplySink,
    tickets: Mutex<HashMap<u64, Ticket>>,
    /// Allocations delivered to this client and not yet released, keyed by
    /// access key.  Allocations are *session leases*: whatever is still
    /// here when the session ends is handed back, so a client that
    /// crashes (even one whose Outcome reply raced its disconnect) cannot
    /// strand a machine claim.
    leases: Mutex<HashMap<String, Allocation>>,
    next_ticket: AtomicU64,
    /// Blocking requests in flight on the submit lane (reactor mode) —
    /// the reactor's equivalent of the legacy per-session worker vectors,
    /// bounded by [`MAX_SESSION_WORKERS`] and awaited by the teardown.
    submit_jobs: AtomicUsize,
    /// Blocking requests in flight on the redeem lane (reactor mode).
    redeem_jobs: AtomicUsize,
    /// The federation domain the peer on this session advertised (via
    /// `SyncPools` or `AdvertDelta`); `None` on ordinary client sessions.
    /// Keyed per session so gossip piggybacking knows who it is talking
    /// to, and so a re-advertisement under a *different* name retires the
    /// old domain.
    peer_domain: Mutex<Option<String>>,
}

impl SessionState {
    fn new(sink: ReplySink) -> Arc<Self> {
        Arc::new(SessionState {
            sink,
            tickets: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
            next_ticket: AtomicU64::new(0),
            submit_jobs: AtomicUsize::new(0),
            redeem_jobs: AtomicUsize::new(0),
            peer_domain: Mutex::new(None),
        })
    }

    /// Best-effort reply; a vanished client is detected by the read side.
    fn send(&self, frame: &ServerFrame) {
        match &self.sink {
            ReplySink::Stream(writer) => {
                let mut writer = writer.lock();
                // Replies from the session thread and its workers
                // serialise on this mutex — releasing it mid-frame
                // would interleave bytes.
                // lint-allow(lock-across-blocking): serialised frame write
                let _ = write_frame(&mut *writer, frame);
            }
            #[cfg(unix)]
            ReplySink::Queue(queue) => queue.push(frame),
        }
    }

    /// Blocking requests this session still has in flight on the worker
    /// lanes (always zero in legacy mode, which tracks thread handles
    /// instead).
    fn jobs_in_flight(&self) -> usize {
        self.submit_jobs.load(Ordering::Relaxed) + self.redeem_jobs.load(Ordering::Relaxed)
    }

    fn issue(&self, ticket: Ticket) -> u64 {
        let wire_id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.tickets.lock().insert(wire_id, ticket);
        wire_id
    }

    /// Records the leases of a redeemed outcome, then delivers it.  The
    /// lease is taken *before* the reply leaves, so there is no window in
    /// which the allocation belongs to nobody.
    fn deliver_outcome(&self, corr: RequestId, outcome: crate::api::QueryOutcome) {
        if let Ok(allocations) = &outcome {
            let mut leases = self.leases.lock();
            for allocation in allocations {
                leases.insert(allocation.access_key.0.clone(), allocation.clone());
            }
        }
        self.send(&ServerFrame::Outcome { corr, outcome });
    }

    /// Same lease-before-reply discipline for a delegated outcome: the
    /// allocations are leased to the *peer daemon's* session, so a peer
    /// that vanishes holding them strands nothing here.
    fn deliver_delegated(
        &self,
        corr: RequestId,
        outcome: crate::api::QueryOutcome,
        state: crate::message::RoutingState,
        deltas: Vec<actyp_proto::AdvertDelta>,
    ) {
        if let Ok(allocations) = &outcome {
            let mut leases = self.leases.lock();
            for allocation in allocations {
                leases.insert(allocation.access_key.0.clone(), allocation.clone());
            }
        }
        self.send(&ServerFrame::Delegated {
            corr,
            outcome,
            ttl: state.ttl,
            visited: state.visited,
            deltas,
        });
    }
}

/// Records which federation domain the peer on this session speaks for.
/// A session that re-advertises under a *new* name is a daemon restarted
/// into a different identity on a still-open connection: everything held
/// under the old domain — directory records, gossip origin log, learned
/// routes — is retired atomically, instead of lingering as a routable
/// ghost beside the new name.
fn note_peer_session_domain(shared: &ServerShared, state: &SessionState, domain: &str) {
    let previous = state.peer_domain.lock().replace(domain.to_string());
    if let Some(previous) = previous {
        if previous != domain {
            if let Some(federation) = &shared.federation {
                federation.retire_domain(&previous);
            }
        }
    }
}

fn run_session(shared: Arc<ServerShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);

    // --- Version negotiation: the first frame must be a Hello. ---
    let hello = match read_client_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        _ => return,
    };
    let reply_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let state = SessionState::new(ReplySink::Stream(Mutex::new(reply_stream)));
    match hello {
        ClientFrame::Hello {
            min_version,
            max_version,
        } => match negotiate(min_version, max_version) {
            Some(version) => state.send(&ServerFrame::HelloAck { version }),
            None => {
                state.send(&ServerFrame::HelloReject {
                    message: format!(
                        "no common protocol version: client speaks {min_version}..={max_version}, \
                         server speaks {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}"
                    ),
                });
                return;
            }
        },
        _ => {
            state.send(&ServerFrame::HelloReject {
                message: "the first frame must be Hello".to_string(),
            });
            return;
        }
    }

    // --- Serve the session (until clean disconnect, transport error or
    // garbage stops the read loop). ---
    //
    // Submission workers (which can block on the live backend's admission
    // window) are counted and capped separately from redemption workers:
    // a client at the submission cap must still be able to Wait, because
    // redeeming tickets is exactly how it frees the window and gets its
    // submissions unstuck.  Capping waits cannot livelock in return — a
    // blocked wait resolves when the pipeline answers, independent of any
    // further client action.
    let mut submit_workers: Vec<JoinHandle<()>> = Vec::new();
    let mut wait_workers: Vec<JoinHandle<()>> = Vec::new();
    let _ = stream.set_read_timeout(Some(SESSION_POLL_INTERVAL));
    loop {
        // Wait (bounded) for the next frame to *start*, so even an idle
        // session observes the drain flag and ends: a draining daemon
        // settles idle sessions' tickets and leases instead of waiting
        // forever for clients — or peer daemons holding pooled links —
        // to hang up.  Once the first byte is visible, the frame is read
        // whole (under a generous per-read deadline, so a sender that
        // stalls mid-frame ends the session instead of wedging it), which
        // keeps a frame arriving in pieces from desynchronising the
        // stream.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        let next = read_client_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(SESSION_POLL_INTERVAL));
        let Ok(Some(frame)) = next else { break };
        // Reap finished workers as we go so the vectors track only live
        // threads.
        submit_workers.retain(|worker| !worker.is_finished());
        wait_workers.retain(|worker| !worker.is_finished());
        match frame {
            ClientFrame::Hello { .. } => {
                state.send(&ServerFrame::HelloReject {
                    message: "duplicate Hello".to_string(),
                });
                break;
            }
            // Submit may block on the live backend's admission window and
            // wait blocks until the outcome is ready, so both run on worker
            // threads: the session keeps reading frames meanwhile, which is
            // what lets one connection keep many requests in flight.
            ClientFrame::Submit { corr, query } => {
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    handle_submit(&shared, &state, corr, &query)
                }));
            }
            ClientFrame::SubmitBatch { corr, queries } => {
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    handle_submit_batch(&shared, &state, corr, &queries)
                }));
            }
            ClientFrame::Wait {
                corr,
                ticket,
                deadline_ms,
            } => {
                // Unknown ids are answered inline — no thread for a frame
                // that cannot block (and no thread-flood from bogus ids);
                // the worker's own atomic claim still decides races.
                if !state.tickets.lock().contains_key(&ticket) {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::UnknownTicket,
                    });
                    continue;
                }
                if wait_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                wait_workers.push(std::thread::spawn(move || {
                    handle_wait(&shared, &state, corr, ticket, deadline_ms)
                }));
            }
            ClientFrame::Poll { corr, ticket } => {
                // The ticket is read, not claimed: concurrent polls of the
                // same ticket race inside the backend, where the loser
                // sees UnknownTicket — the same contract as concurrent
                // in-process redemption.  The session table lock is NOT
                // held across try_poll, which on a federated backend can
                // settle a failure through the WAN — and the lookup runs
                // in its own statement so the guard also drops before the
                // error reply (a `match` scrutinee temporary would hold
                // it through every arm).
                let looked_up = state.tickets.lock().get(&ticket).copied();
                let backend_ticket = match looked_up {
                    None => {
                        state.send(&ServerFrame::Error {
                            corr,
                            error: AllocationError::UnknownTicket,
                        });
                        continue;
                    }
                    Some(backend_ticket) => backend_ticket,
                };
                let poll = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.try_poll(backend_ticket) {
                        None => state.send(&ServerFrame::Pending { corr }),
                        Some(outcome) => {
                            state.tickets.lock().remove(&ticket);
                            state.deliver_outcome(corr, outcome);
                        }
                    }
                };
                // On a federated daemon a poll can block on peer I/O, so
                // it runs on a worker like Wait does; in-process backends
                // answer inline.
                if shared.federation.is_some() {
                    if wait_workers.len() >= MAX_SESSION_WORKERS {
                        state.send(&session_overloaded(corr));
                        continue;
                    }
                    wait_workers.push(std::thread::spawn(poll));
                } else {
                    poll();
                }
            }
            ClientFrame::Release { corr, allocation } => {
                let release = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.release(&allocation) {
                        Ok(()) => {
                            state.leases.lock().remove(&allocation.access_key.0);
                            state.send(&ServerFrame::Released { corr });
                        }
                        Err(error) => state.send(&ServerFrame::Error { corr, error }),
                    }
                };
                // Releasing a delegated allocation crosses the wire to the
                // owning domain: a worker keeps the frame loop responsive.
                if shared.federation.is_some() {
                    if submit_workers.len() >= MAX_SESSION_WORKERS {
                        state.send(&session_overloaded(corr));
                        continue;
                    }
                    submit_workers.push(std::thread::spawn(release));
                } else {
                    release();
                }
            }
            ClientFrame::Stats { corr } => {
                // The backend fills its own counters; the transport
                // batching counters belong to the daemon and are
                // overlaid here (zero in thread-per-session mode, which
                // neither batches decodes nor coalesces flushes).
                let mut stats = shared.manager.stats();
                stats.frames_batched = shared.frames_batched.load(Ordering::Relaxed);
                stats.writes_coalesced = shared.writes_coalesced.load(Ordering::Relaxed);
                state.send(&ServerFrame::StatsReply { corr, stats });
            }
            ClientFrame::Shutdown { corr } => {
                state.send(&ServerFrame::Ack { corr });
                break;
            }
            ClientFrame::Halt { corr } => {
                state.send(&ServerFrame::Ack { corr });
                shared.begin_drain();
                break;
            }
            // A peer daemon delegating a query here.  Runs on a submit
            // worker: resolving it blocks on the local backend and may hop
            // onward to further peers.
            ClientFrame::Delegate {
                corr,
                query,
                ttl,
                visited,
            } => {
                let Some(federation) = shared.federation.clone() else {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::Protocol(
                            "this daemon is not federated (no --domain/--peer)".to_string(),
                        ),
                    });
                    continue;
                };
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    let (outcome, routing) = federation.handle_delegate(&query, ttl, visited);
                    // Piggyback unacknowledged gossip on the reply the
                    // delegating peer is already waiting for.
                    let deltas = match state.peer_domain.lock().clone() {
                        Some(peer) => federation.piggyback_deltas(&peer),
                        None => Vec::new(),
                    };
                    state.deliver_delegated(corr, outcome, routing, deltas);
                }));
            }
            // A peer daemon advertising its domain and pool names; answer
            // with ours.  Inline: no blocking work.
            ClientFrame::SyncPools {
                corr,
                domain,
                pools,
                have,
            } => match &shared.federation {
                None => state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Protocol(
                        "this daemon is not federated (no --domain/--peer)".to_string(),
                    ),
                }),
                Some(federation) => {
                    // Record the inbound advertisement for observability;
                    // the address is unknown on an inbound connection, so
                    // delegation candidates still come from outbound links
                    // only.
                    note_peer_session_domain(&shared, &state, &domain);
                    federation.record_inbound_advertisement(&domain, &pools);
                    federation.gossip().note_peer_versions(&domain, &have);
                    federation.refresh_gossip();
                    let deltas = federation.gossip().deltas_since(&have);
                    state.send(&ServerFrame::PoolsSynced {
                        corr,
                        domain: federation.domain().to_string(),
                        pools: federation.local_pools(),
                        deltas,
                    });
                }
            },
            // An anti-entropy push from a peer daemon.  Inline: applying
            // deltas is pure in-memory state.
            ClientFrame::AdvertDelta {
                corr,
                domain,
                deltas,
                have,
            } => match &shared.federation {
                None => state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Protocol(
                        "this daemon is not federated (no --domain/--peer)".to_string(),
                    ),
                }),
                Some(federation) => {
                    note_peer_session_domain(&shared, &state, &domain);
                    let reply = federation.handle_advert_delta(&domain, &deltas, &have);
                    state.send(&ServerFrame::AdvertAck {
                        corr,
                        domain: federation.domain().to_string(),
                        deltas: reply,
                    });
                }
            },
        }
    }

    // --- Graceful session teardown. ---
    //
    // Settling and joining must interleave: a submit worker can be blocked
    // on the live backend's admission window, whose permits are held by
    // the very tickets sitting abandoned in this session's table.  Joining
    // first would deadlock; settling once would miss the tickets those
    // unblocked workers issue afterwards.  So: settle (freeing permits),
    // reap, repeat until every worker finished, then sweep one last time.
    // A stuck backend cannot wedge the daemon forever — after a generous
    // deadline the remaining workers are detached instead of joined.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        settle_abandoned_tickets(&shared, &state, deadline);
        submit_workers.retain(|worker| !worker.is_finished());
        wait_workers.retain(|worker| !worker.is_finished());
        if submit_workers.is_empty() && wait_workers.is_empty() {
            break;
        }
        if std::time::Instant::now() >= deadline {
            // Leave the stragglers detached.  Settlement is best-effort
            // past this point: only a backend wedged beyond the whole
            // teardown budget can still strand a claim.
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Final sweep for tickets issued by workers that finished after the
    // last in-loop settle, on a small fresh budget of its own.
    settle_abandoned_tickets(
        &shared,
        &state,
        std::time::Instant::now() + Duration::from_secs(5),
    );
    // Hand back every allocation lease the client still held — including
    // outcomes whose delivery raced the disconnect (the lease is recorded
    // before the reply is written, so nothing falls between the cracks).
    let leaked: Vec<Allocation> = state.leases.lock().drain().map(|(_, a)| a).collect();
    for allocation in &leaked {
        let _ = shared.manager.release(allocation);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Overload reply for a session that exceeded a blocking-worker cap.
fn session_overloaded(corr: RequestId) -> ServerFrame {
    ServerFrame::Error {
        corr,
        error: AllocationError::Internal(format!(
            "session has {MAX_SESSION_WORKERS} blocking requests of this kind in \
             flight; await replies before sending more"
        )),
    }
}

/// Settles every ticket currently abandoned in the session table: awaits
/// the outcomes (bounded by `deadline`, so a wedged backend cannot hold
/// the session thread hostage) and hands the allocations straight back, so
/// no machine claim (or live-backend window permit) leaks past the session.
/// A ticket whose wait times out goes *back* into the table — still
/// redeemable inside the backend — so a later settling round can retry it
/// instead of dropping the claim on the floor.
///
/// On a federated daemon the settle is *local only*: the client these
/// tickets belonged to is gone, so a delegable local failure is simply
/// accepted instead of being shipped across the WAN to peers — nobody is
/// left to use an allocation a peer would make, and the delegation (plus
/// its hop-by-hop release) would be pure churn.
fn settle_abandoned_tickets(
    shared: &ServerShared,
    state: &SessionState,
    deadline: std::time::Instant,
) {
    let abandoned: Vec<(u64, Ticket)> = state.tickets.lock().drain().collect();
    for (wire_id, ticket) in abandoned {
        let budget = deadline.saturating_duration_since(std::time::Instant::now());
        let waited = match &shared.federation {
            Some(federation) => federation.wait_deadline_local(ticket, budget),
            None => shared.manager.wait_deadline(ticket, budget),
        };
        match waited {
            Some(Ok(allocations)) => {
                for allocation in &allocations {
                    let _ = shared.manager.release(allocation);
                }
            }
            Some(Err(_)) => {}
            None => {
                state.tickets.lock().insert(wire_id, ticket);
            }
        }
    }
}

fn handle_submit(shared: &ServerShared, state: &SessionState, corr: RequestId, query: &str) {
    // The trait's own text path: parse errors map exactly as they would for
    // an in-process client.
    match shared.manager.submit_text(query) {
        Ok(ticket) => {
            let wire_id = state.issue(ticket);
            state.send(&ServerFrame::Submitted {
                corr,
                ticket: wire_id,
            });
        }
        Err(error) => state.send(&ServerFrame::Error { corr, error }),
    }
}

fn handle_submit_batch(
    shared: &ServerShared,
    state: &SessionState,
    corr: RequestId,
    queries: &[String],
) {
    let mut parsed = Vec::with_capacity(queries.len());
    for query in queries {
        match actyp_query::parse_query(query) {
            Ok(q) => parsed.push(q),
            Err(e) => {
                state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Parse(e.to_string()),
                });
                return;
            }
        }
    }
    match shared.manager.submit_batch(parsed) {
        Ok(tickets) => {
            let wire_ids = tickets.into_iter().map(|t| state.issue(t)).collect();
            state.send(&ServerFrame::BatchSubmitted {
                corr,
                tickets: wire_ids,
            });
        }
        Err(error) => state.send(&ServerFrame::Error { corr, error }),
    }
}

fn handle_wait(
    shared: &ServerShared,
    state: &SessionState,
    corr: RequestId,
    ticket: u64,
    deadline_ms: Option<u64>,
) {
    // Claimed in its own statement so the table guard drops before the
    // error reply — a `match` scrutinee temporary lives through the arms.
    let claimed = state.tickets.lock().remove(&ticket);
    let backend_ticket = match claimed {
        Some(t) => t,
        None => {
            state.send(&ServerFrame::Error {
                corr,
                error: AllocationError::UnknownTicket,
            });
            return;
        }
    };
    match deadline_ms {
        None => {
            let outcome = shared.manager.wait(backend_ticket);
            state.deliver_outcome(corr, outcome);
        }
        Some(ms) => match shared
            .manager
            .wait_deadline(backend_ticket, Duration::from_millis(ms))
        {
            Some(outcome) => state.deliver_outcome(corr, outcome),
            None => {
                // The deadline elapsed; the ticket stays redeemable.
                state.tickets.lock().insert(ticket, backend_ticket);
                state.send(&ServerFrame::TimedOut { corr });
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The correlation id a response frame answers, if any.  Also used by the
/// federation peer links, whose request/response exchanges ride the same
/// protocol.
pub(crate) fn corr_of(frame: &ServerFrame) -> Option<RequestId> {
    match frame {
        ServerFrame::HelloAck { .. } | ServerFrame::HelloReject { .. } => None,
        ServerFrame::Submitted { corr, .. }
        | ServerFrame::BatchSubmitted { corr, .. }
        | ServerFrame::Outcome { corr, .. }
        | ServerFrame::Pending { corr }
        | ServerFrame::TimedOut { corr }
        | ServerFrame::Released { corr }
        | ServerFrame::StatsReply { corr, .. }
        | ServerFrame::Ack { corr }
        | ServerFrame::Error { corr, .. }
        | ServerFrame::Delegated { corr, .. }
        | ServerFrame::PoolsSynced { corr, .. }
        | ServerFrame::AdvertAck { corr, .. } => Some(*corr),
    }
}

struct ClientShared {
    /// Requests awaiting their response frame, by correlation id.  The
    /// reader thread routes each incoming frame to its sender; dropping a
    /// sender (during connection teardown) wakes the waiting request with
    /// a receive error.
    pending: Mutex<HashMap<u64, Sender<ServerFrame>>>,
    /// Why the connection died, once it has.
    dead: Mutex<Option<String>>,
}

impl ClientShared {
    /// Records the death reason and wakes every in-flight request.
    ///
    /// The `dead` lock is held across the `pending` clear so no request can
    /// slip between the two: [`RemoteBackend::request`] registers itself in
    /// `pending` while holding `dead`, so it either registers before the
    /// clear (and is woken by it) or observes the death reason and never
    /// blocks.
    fn poison(&self, reason: String) {
        let mut dead = self.dead.lock();
        dead.get_or_insert(reason);
        self.pending.lock().clear();
    }

    fn death_error(&self) -> AllocationError {
        AllocationError::Network(
            self.dead
                .lock()
                .clone()
                .unwrap_or_else(|| "connection closed".to_string()),
        )
    }
}

/// The [`ResourceManager`] surface served by a remote `ypd` daemon over one
/// TCP connection.
///
/// All trait methods are safe to call from many threads at once; requests
/// are correlated by [`RequestId`], so several tickets can be in flight on
/// the single socket — the paper's pipelining across a network hop.
/// Tickets are branded per connection: redeeming a remote ticket on a
/// different backend (or vice versa) fails with
/// [`AllocationError::UnknownTicket`].
///
/// [`RemoteBackend::stats`] degrades to an empty snapshot if the
/// connection has died (the trait method is infallible); every other
/// operation reports [`AllocationError::Network`] /
/// [`AllocationError::Protocol`] faithfully.
pub struct RemoteBackend {
    writer: Mutex<TcpStream>,
    shared: Arc<ClientShared>,
    corr: RequestIdGenerator,
    brand: u64,
    version: u16,
    closed: AtomicBool,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteBackend {
    /// Connects to a `ypd` daemon and negotiates the protocol version.
    pub fn connect(addr: &StageAddress) -> Result<Self, AllocationError> {
        let mut stream = TcpStream::connect((addr.host.as_str(), addr.port))
            .map_err(|e| AllocationError::Network(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);

        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                min_version: MIN_SUPPORTED_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )
        .map_err(|e| AllocationError::Network(format!("hello: {e}")))?;
        let version = match read_server_frame(&mut stream) {
            Ok(Some(ServerFrame::HelloAck { version })) => version,
            Ok(Some(ServerFrame::HelloReject { message })) => {
                return Err(AllocationError::Protocol(format!(
                    "server rejected the connection: {message}"
                )))
            }
            Ok(Some(other)) => {
                return Err(AllocationError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
            Ok(None) => {
                return Err(AllocationError::Network(
                    "server closed the connection during the handshake".to_string(),
                ))
            }
            Err(e) => return Err(AllocationError::Network(format!("handshake: {e}"))),
        };

        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
        });
        let mut read_stream = stream
            .try_clone()
            .map_err(|e| AllocationError::Network(format!("clone stream: {e}")))?;
        let reader_shared = shared.clone();
        let reader = std::thread::spawn(move || loop {
            match read_server_frame(&mut read_stream) {
                Ok(Some(frame)) => match corr_of(&frame) {
                    Some(corr) => {
                        let sender = reader_shared.pending.lock().remove(&corr.0);
                        if let Some(sender) = sender {
                            let _ = sender.send(frame);
                        }
                    }
                    None => {
                        reader_shared
                            .poison("unexpected handshake frame after connect".to_string());
                        break;
                    }
                },
                Ok(None) => {
                    reader_shared.poison("server closed the connection".to_string());
                    break;
                }
                Err(e) => {
                    reader_shared.poison(e.to_string());
                    break;
                }
            }
        });

        Ok(RemoteBackend {
            writer: Mutex::new(stream),
            shared,
            corr: RequestIdGenerator::new(),
            brand: crate::api::next_backend_brand(),
            version,
            closed: AtomicBool::new(false),
            reader: Mutex::new(Some(reader)),
        })
    }

    /// The protocol version negotiated for this connection.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Sends one request frame and blocks for the response that carries the
    /// same correlation id.  Other threads' requests interleave freely on
    /// the connection meanwhile.
    fn request(
        &self,
        build: impl FnOnce(RequestId) -> ClientFrame,
    ) -> Result<ServerFrame, AllocationError> {
        let corr = self.corr.next();
        let (tx, rx): (Sender<ServerFrame>, Receiver<ServerFrame>) = unbounded();
        {
            // Check-and-register atomically with respect to `poison` (which
            // holds `dead` while clearing `pending`): otherwise the reader
            // thread could die between our check and our insert, leaving a
            // registration nothing will ever answer — a permanent hang.
            let dead = self.shared.dead.lock();
            if dead.is_some() {
                drop(dead);
                return Err(self.shared.death_error());
            }
            self.shared.pending.lock().insert(corr.0, tx);
        }
        let frame = build(corr);
        let write_result = {
            let mut writer = self.writer.lock();
            // Concurrent requests on the shared backend connection
            // serialise their frame writes here; the socket write
            // timeout bounds a stalled backend.
            // lint-allow(lock-across-blocking): serialised frame write
            write_frame(&mut *writer, &frame)
        };
        if let Err(e) = write_result {
            self.shared.pending.lock().remove(&corr.0);
            // `write_frame` refuses an over-limit frame with InvalidData
            // *before* sending anything, so the connection is still
            // perfectly consistent: report it against this request only
            // instead of poisoning every other in-flight one.
            if e.kind() == std::io::ErrorKind::InvalidData {
                return Err(AllocationError::Protocol(e.to_string()));
            }
            self.shared.poison(e.to_string());
            return Err(self.shared.death_error());
        }
        rx.recv().map_err(|_| self.shared.death_error())
    }

    fn check_brand(&self, ticket: Ticket) -> Result<u64, AllocationError> {
        if ticket.brand() != self.brand {
            return Err(AllocationError::UnknownTicket);
        }
        Ok(ticket.id())
    }

    fn unexpected(frame: ServerFrame) -> AllocationError {
        AllocationError::Protocol(format!("unexpected response frame: {frame:?}"))
    }

    /// Refuses a query rendering the decoder on the far side would reject,
    /// *before* it poisons the whole connection: the codec caps individual
    /// strings at [`MAX_SEQUENCE_LEN`].
    fn check_wire_text(text: &str) -> Result<(), AllocationError> {
        if text.len() > MAX_SEQUENCE_LEN {
            return Err(AllocationError::Protocol(format!(
                "query text of {} bytes exceeds the wire limit of {MAX_SEQUENCE_LEN} bytes",
                text.len()
            )));
        }
        Ok(())
    }

    /// Submits one query already rendered in the native text form — the
    /// protocol's query encoding.
    fn submit_rendered(&self, query: String) -> Result<Ticket, AllocationError> {
        Self::check_wire_text(&query)?;
        match self.request(|corr| ClientFrame::Submit { corr, query })? {
            ServerFrame::Submitted { ticket, .. } => Ok(Ticket::from_parts(self.brand, ticket)),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Asks the daemon itself to drain and exit (administrative; not part
    /// of the [`ResourceManager`] surface).  The daemon stops accepting
    /// connections; this session should [`shutdown`](ResourceManager::shutdown)
    /// afterwards so the drain can complete.
    pub fn halt_daemon(&self) -> Result<(), AllocationError> {
        match self.request(|corr| ClientFrame::Halt { corr })? {
            ServerFrame::Ack { .. } => Ok(()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Closes the transport and joins the reader thread.
    fn close_transport(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let writer = self.writer.lock();
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        let reader = self.reader.lock().take();
        if let Some(reader) = reader {
            let _ = reader.join();
        }
    }
}

impl ResourceManager for RemoteBackend {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        // The native text rendering is the protocol's query encoding.
        self.submit_rendered(query.to_string())
    }

    /// Ships the text as-is: it already *is* the wire encoding, so there is
    /// nothing to parse client-side — the server's query manager parses it
    /// once, exactly like an in-process submission, and parse errors come
    /// back through the protocol's error taxonomy.
    fn submit_text(&self, text: &str) -> Result<Ticket, AllocationError> {
        self.submit_rendered(text.to_string())
    }

    fn submit_batch(&self, queries: Vec<Query>) -> Result<Vec<Ticket>, AllocationError> {
        let rendered: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        for query in &rendered {
            Self::check_wire_text(query)?;
        }
        match self.request(|corr| ClientFrame::SubmitBatch {
            corr,
            queries: rendered,
        })? {
            ServerFrame::BatchSubmitted { tickets, .. } => Ok(tickets
                .into_iter()
                .map(|id| Ticket::from_parts(self.brand, id))
                .collect()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        let wire_id = self.check_brand(ticket)?;
        match self.request(|corr| ClientFrame::Wait {
            corr,
            ticket: wire_id,
            deadline_ms: None,
        })? {
            ServerFrame::Outcome { outcome, .. } => outcome,
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        let wire_id = match self.check_brand(ticket) {
            Ok(id) => id,
            Err(e) => return Some(Err(e)),
        };
        let deadline_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
        match self.request(|corr| ClientFrame::Wait {
            corr,
            ticket: wire_id,
            deadline_ms: Some(deadline_ms),
        }) {
            Ok(ServerFrame::Outcome { outcome, .. }) => Some(outcome),
            Ok(ServerFrame::TimedOut { .. }) => None,
            Ok(ServerFrame::Error { error, .. }) => Some(Err(error)),
            Ok(other) => Some(Err(Self::unexpected(other))),
            Err(e) => Some(Err(e)),
        }
    }

    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        let wire_id = match self.check_brand(ticket) {
            Ok(id) => id,
            Err(e) => return Some(Err(e)),
        };
        match self.request(|corr| ClientFrame::Poll {
            corr,
            ticket: wire_id,
        }) {
            Ok(ServerFrame::Outcome { outcome, .. }) => Some(outcome),
            Ok(ServerFrame::Pending { .. }) => None,
            Ok(ServerFrame::Error { error, .. }) => Some(Err(error)),
            Ok(other) => Some(Err(Self::unexpected(other))),
            Err(e) => Some(Err(e)),
        }
    }

    fn release(&self, allocation: &crate::allocation::Allocation) -> Result<(), AllocationError> {
        match self.request(|corr| ClientFrame::Release {
            corr,
            allocation: allocation.clone(),
        })? {
            ServerFrame::Released { .. } => Ok(()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        match self.request(|corr| ClientFrame::Stats { corr }) {
            Ok(ServerFrame::StatsReply { stats, .. }) => stats,
            _ => StatsSnapshot::default(),
        }
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        if self.closed.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Tell the server so it can settle the session eagerly; a dead
        // connection is already shut down as far as the client can tell.
        let result = self.request(|corr| ClientFrame::Shutdown { corr });
        self.close_transport();
        match result {
            Ok(ServerFrame::Ack { .. }) | Err(AllocationError::Network(_)) => Ok(()),
            Ok(ServerFrame::Error { error, .. }) => Err(error),
            Ok(other) => Err(Self::unexpected(other)),
            Err(e) => Err(e),
        }
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Closing the socket ends the server session, which settles any
        // tickets this client abandoned.
        self.close_transport();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BackendKind, PipelineBuilder};
    use actyp_grid::{FleetSpec, SyntheticFleet};
    use std::io::Write;

    fn fleet_db(n: usize, seed: u64) -> actyp_grid::SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), seed)
            .generate()
            .into_shared()
    }

    fn loopback() -> StageAddress {
        StageAddress::new("127.0.0.1", 0)
    }

    fn serve_kind(kind: BackendKind, machines: usize, seed: u64) -> ServerHandle {
        PipelineBuilder::new()
            .database(fleet_db(machines, seed))
            .serve(&loopback(), kind)
            .unwrap()
    }

    fn paper_text() -> String {
        Query::paper_example().to_string()
    }

    #[test]
    fn remote_round_trip_over_every_hosted_backend() {
        for kind in BackendKind::ALL {
            let server = serve_kind(kind, 300, 1);
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            assert_eq!(remote.protocol_version(), PROTOCOL_VERSION);
            let ticket = remote.submit_text(&paper_text()).unwrap();
            let allocations = remote.wait(ticket).unwrap();
            assert_eq!(allocations.len(), 1, "{kind}");
            assert!(allocations[0].machine_name.contains("sun"), "{kind}");
            remote.release(&allocations[0]).unwrap();
            let stats = remote.stats();
            assert_eq!(stats.requests, 1, "{kind}");
            assert_eq!(stats.releases, 1, "{kind}");
            remote.halt_daemon().unwrap();
            remote.shutdown().unwrap();
            server.join().unwrap();
        }
    }

    #[test]
    fn remote_tickets_pipeline_on_one_connection() {
        let server = PipelineBuilder::new()
            .database(fleet_db(400, 2))
            .query_managers(2)
            .serve(&loopback(), BackendKind::Live)
            .unwrap();
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        let query = Query::paper_example();

        // Several tickets in flight on the socket before the first wait.
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| remote.submit(query.clone()).unwrap())
            .collect();
        assert!(
            remote.stats().in_flight >= 2,
            "server-side stats must show overlapping tickets"
        );
        for ticket in tickets {
            let allocations = remote.wait(ticket).unwrap();
            remote.release(&allocations[0]).unwrap();
        }
        assert_eq!(remote.stats().allocations, 5);
        assert_eq!(remote.stats().in_flight, 0);

        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn wait_deadline_times_out_and_the_ticket_survives() {
        let server = serve_kind(BackendKind::Live, 200, 3);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        let ticket = remote.submit_text(&paper_text()).unwrap();
        // A zero deadline may or may not catch the outcome; a generous one
        // must.  Either way the ticket remains redeemable after a timeout.
        if remote.wait_deadline(ticket, Duration::ZERO).is_none() {
            let outcome = remote
                .wait_deadline(ticket, Duration::from_secs(10))
                .expect("resolves within the deadline");
            let allocations = outcome.unwrap();
            remote.release(&allocations[0]).unwrap();
        }
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn remote_errors_cross_the_wire_intact() {
        let server = serve_kind(BackendKind::Embedded, 100, 4);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        // Allocation failure.
        let err = remote
            .submit_text_wait("punch.rsrc.arch = cray\n")
            .unwrap_err();
        assert_eq!(err, AllocationError::NoSuchResources);
        // Parse failure (parsed server side).
        let ticket_err = remote.submit_text("garbage").unwrap_err();
        assert!(matches!(ticket_err, AllocationError::Parse(_)));
        // Unknown-ticket and double-release failures.
        let ticket = remote.submit_text(&paper_text()).unwrap();
        let allocations = remote.wait(ticket).unwrap();
        assert_eq!(
            remote.wait(ticket).unwrap_err(),
            AllocationError::UnknownTicket
        );
        remote.release(&allocations[0]).unwrap();
        assert_eq!(
            remote.release(&allocations[0]).unwrap_err(),
            AllocationError::UnknownAllocation
        );
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn remote_tickets_are_branded_per_connection() {
        let server = serve_kind(BackendKind::Embedded, 200, 5);
        let first = RemoteBackend::connect(&server.local_addr()).unwrap();
        let second = RemoteBackend::connect(&server.local_addr()).unwrap();
        let ticket = first.submit_text(&paper_text()).unwrap();
        assert_eq!(
            second.wait(ticket).unwrap_err(),
            AllocationError::UnknownTicket
        );
        assert!(first.wait(ticket).is_ok());
        first.halt_daemon().unwrap();
        first.shutdown().unwrap();
        second.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn server_side_ticket_tables_are_session_scoped() {
        let server = serve_kind(BackendKind::Embedded, 200, 21);
        let addr = server.local_addr();
        let first = RemoteBackend::connect(&addr).unwrap();
        let ticket = first.submit_text(&paper_text()).unwrap();

        // A raw second session replays the FIRST session's wire ticket id,
        // bypassing the client-side brand check entirely: the server must
        // refuse it from its own (empty) session table.
        let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
        write_frame(
            &mut raw,
            &ClientFrame::Hello {
                min_version: PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_frame(&mut raw).unwrap(),
            Some(ServerFrame::HelloAck { .. })
        ));
        write_frame(
            &mut raw,
            &ClientFrame::Wait {
                corr: RequestId(1),
                ticket: ticket.id(),
                deadline_ms: None,
            },
        )
        .unwrap();
        match read_server_frame(&mut raw).unwrap() {
            Some(ServerFrame::Error { error, .. }) => {
                assert_eq!(error, AllocationError::UnknownTicket);
            }
            other => panic!("expected UnknownTicket, got {other:?}"),
        }
        drop(raw);

        // The issuing session still redeems it.
        let allocations = first.wait(ticket).unwrap();
        first.release(&allocations[0]).unwrap();
        first.halt_daemon().unwrap();
        first.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn abandoned_blocked_submissions_do_not_wedge_the_drain() {
        // A raw client floods more submissions than the live backend's
        // admission window and vanishes without redeeming anything.  The
        // blocked submit workers' permits are held by the abandoned
        // tickets; teardown must settle and join iteratively or the
        // session (and the whole drain) wedges forever.
        let db = fleet_db(300, 22);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .window(2)
            .serve(&loopback(), BackendKind::Live)
            .unwrap();
        let addr = server.local_addr();
        {
            let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            write_frame(
                &mut raw,
                &ClientFrame::Hello {
                    min_version: PROTOCOL_VERSION,
                    max_version: PROTOCOL_VERSION,
                },
            )
            .unwrap();
            assert!(matches!(
                read_server_frame(&mut raw).unwrap(),
                Some(ServerFrame::HelloAck { .. })
            ));
            for i in 0..5 {
                write_frame(
                    &mut raw,
                    &ClientFrame::Submit {
                        corr: RequestId(i),
                        query: paper_text(),
                    },
                )
                .unwrap();
            }
            // Dropped without reading replies or redeeming a single ticket.
        }
        server.halt();
        server.join().unwrap();
        // Every allocation the abandoned submissions produced was settled.
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn abandoned_sessions_release_their_allocations() {
        let db = fleet_db(200, 6);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        {
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            let _ticket = remote.submit_text(&paper_text()).unwrap();
            // Dropped without wait/release: the client vanishes.
        }
        server.halt();
        server.join().unwrap();
        // The session settled the abandoned ticket: nothing stays claimed.
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn redeemed_but_unreleased_allocations_return_with_the_session() {
        // The nastier variant: the client *redeems* the outcome (so the
        // ticket has left the session table) and then vanishes without
        // releasing.  The allocation is a session lease, so teardown hands
        // it back — including when the Outcome delivery itself raced the
        // disconnect.
        let db = fleet_db(200, 7);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        {
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            let ticket = remote.submit_text(&paper_text()).unwrap();
            let allocations = remote.wait(ticket).unwrap();
            assert_eq!(allocations.len(), 1);
            // Dropped holding the allocation.
        }
        server.halt();
        server.join().unwrap();
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn disconnect_racing_an_in_flight_wait_leaks_nothing() {
        // Raw client: submit, read Submitted, fire a Wait, and hang up
        // without reading the Outcome.  The wait worker has already pulled
        // the ticket out of the session table, so only the lease mechanism
        // can return the allocation.
        let db = fleet_db(200, 8);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        let addr = server.local_addr();
        {
            let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            write_frame(
                &mut raw,
                &ClientFrame::Hello {
                    min_version: PROTOCOL_VERSION,
                    max_version: PROTOCOL_VERSION,
                },
            )
            .unwrap();
            assert!(matches!(
                read_server_frame(&mut raw).unwrap(),
                Some(ServerFrame::HelloAck { .. })
            ));
            write_frame(
                &mut raw,
                &ClientFrame::Submit {
                    corr: RequestId(0),
                    query: paper_text(),
                },
            )
            .unwrap();
            let ticket = match read_server_frame(&mut raw).unwrap() {
                Some(ServerFrame::Submitted { ticket, .. }) => ticket,
                other => panic!("expected Submitted, got {other:?}"),
            };
            write_frame(
                &mut raw,
                &ClientFrame::Wait {
                    corr: RequestId(1),
                    ticket,
                    deadline_ms: None,
                },
            )
            .unwrap();
            // Dropped without reading the Outcome.
        }
        server.halt();
        server.join().unwrap();
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn version_negotiation_rejects_a_future_only_client() {
        let server = serve_kind(BackendKind::Embedded, 50, 7);
        let addr = server.local_addr();
        let mut stream = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                min_version: PROTOCOL_VERSION + 1,
                max_version: PROTOCOL_VERSION + 9,
            },
        )
        .unwrap();
        match read_server_frame(&mut stream).unwrap() {
            Some(ServerFrame::HelloReject { message }) => {
                assert!(message.contains("no common protocol version"), "{message}");
            }
            other => panic!("expected HelloReject, got {other:?}"),
        }
        drop(stream);
        server.halt();
        server.join().unwrap();
    }

    #[test]
    fn garbage_on_the_socket_does_not_kill_the_daemon() {
        let server = serve_kind(BackendKind::Embedded, 50, 8);
        let addr = server.local_addr();
        {
            let mut stream = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            stream.write_all(&[0xFF; 64]).unwrap();
        }
        // The daemon survives and serves a well-behaved client afterwards.
        let remote = RemoteBackend::connect(&addr).unwrap();
        let allocations = remote.submit_text_wait(&paper_text()).unwrap();
        remote.release(&allocations[0]).unwrap();
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn halt_stops_the_daemon_and_new_connections_fail() {
        let server = serve_kind(BackendKind::Embedded, 50, 9);
        let addr = server.local_addr();
        let remote = RemoteBackend::connect(&addr).unwrap();
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
        // The listener is gone: connecting now fails (or is immediately
        // closed before any HelloAck).
        assert!(RemoteBackend::connect(&addr).is_err());
    }

    #[test]
    fn shutdown_is_idempotent_and_poisons_later_calls() {
        let server = serve_kind(BackendKind::Embedded, 100, 10);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        remote.shutdown().unwrap();
        remote.shutdown().unwrap();
        let err = remote.submit_text(&paper_text()).unwrap_err();
        assert!(matches!(err, AllocationError::Network(_)), "{err:?}");
        server.halt();
        server.join().unwrap();
    }
}
