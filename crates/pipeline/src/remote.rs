//! The wire deployment: a `ypd` server hosting any backend behind the
//! [`actyp_proto`] protocol, and the [`RemoteBackend`] client that puts the
//! same [`ResourceManager`] surface on the other end of a TCP socket.
//!
//! The paper's architecture is explicitly a *network* service — "queries
//! propagate from one stage to the next via TCP or UDP", and "all state
//! information is carried with the query itself".  This module closes the
//! gap the in-process backends leave open: the exact client code that runs
//! against the embedded engine runs unchanged against a daemon on another
//! machine, and the ticket pipelining the paper measures now spans a real
//! network hop — multiple tickets in flight on one connection, multiplexed
//! by [`RequestId`] correlation.
//!
//! # Server
//!
//! [`serve`] binds a listener and hosts *any* [`ResourceManager`] — the
//! embedded engine, the threaded live pipeline or a centralized baseline —
//! behind a threaded accept loop.  Each connection is a *session* with its
//! own ticket table: wire ticket ids are session-scoped, so one client can
//! never redeem (or guess) another's tickets.  Slow operations (submit,
//! which may block on the live backend's admission window, and wait) run on
//! per-request worker threads so the session keeps reading frames — that is
//! what makes server-side pipelining real.  Allocations are *session
//! leases*: a session that ends settles its outstanding tickets (outcomes
//! awaited, bounded by a teardown budget) and hands back every allocation
//! the client still held, so an abruptly disconnected client leaks neither
//! machines nor window permits.  [`ServerHandle::halt`] (or a client's
//! [`ClientFrame::Halt`]) drains the daemon gracefully: the listener stops
//! accepting, open sessions finish, and [`ServerHandle::join`] then tears
//! the hosted backend down.
//!
//! # Client
//!
//! [`RemoteBackend::connect`] performs the protocol's version negotiation
//! and then implements the whole trait over the socket.  A background
//! reader thread routes response frames to the requests that sent them, so
//! any number of client threads (or one thread holding many tickets) share
//! the connection.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use actyp_proto::{
    negotiate, read_client_frame, read_server_frame, write_frame, ClientFrame, ServerFrame,
    MAX_SEQUENCE_LEN, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use actyp_query::Query;

use crate::allocation::{Allocation, AllocationError};
use crate::api::{QueryOutcome, ResourceManager, StatsSnapshot, Ticket};
use crate::message::{RequestId, RequestIdGenerator, StageAddress};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Upper bound on worker threads (blocking submits/waits) per session; a
/// request beyond it is answered with an error instead of spawning, so one
/// connection cannot exhaust the daemon's threads.
const MAX_SESSION_WORKERS: usize = 256;

/// How often an idle session checks the daemon's drain flag.  Sessions
/// block on the socket between frames; without this bound a drain would
/// wait forever on idle-but-connected clients — in particular the pooled
/// peer links other federated daemons hold open indefinitely.
const SESSION_POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Per-read deadline while a started frame is being received.  A client
/// that begins a frame and then stalls completely would otherwise hold
/// the session thread (and a drain) hostage with an unbounded read.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(30);

struct ServerShared {
    manager: Box<dyn ResourceManager>,
    /// Present when this daemon is federated: the same backend the
    /// sessions serve, kept concretely typed so incoming
    /// [`ClientFrame::Delegate`] / [`ClientFrame::SyncPools`] frames from
    /// peer daemons reach the federation surface the trait does not carry.
    federation: Option<Arc<crate::federation::FederatedBackend>>,
    draining: AtomicBool,
    wake_addr: SocketAddr,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    /// Sessions that panicked and were reaped before [`ServerHandle::join`]
    /// ran; counted so the panic still surfaces at join time.
    reaped_panics: AtomicU64,
}

impl ServerShared {
    /// Flags the drain and pokes the blocking `accept` awake with a dummy
    /// connection so the accept loop observes it.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.wake_addr);
    }
}

/// A running `ypd` server.  Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::halt`] then [`ServerHandle::join`] for a graceful
/// drain (or let a client send [`ClientFrame::Halt`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The address the daemon actually listens on (resolves port 0 binds).
    pub fn local_addr(&self) -> StageAddress {
        StageAddress::new(self.addr.ip().to_string(), self.addr.port())
    }

    /// Asks the daemon to drain: stop accepting new connections and let the
    /// open sessions run to completion.  Idempotent.
    pub fn halt(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the daemon has fully drained (accept loop stopped and
    /// every session finished — sessions end when their client disconnects
    /// or shuts its session down; during a drain, sessions idle between
    /// frames are ended and settled too, so a daemon with pooled peer
    /// links or forgotten clients still stops), then tears the hosted
    /// backend down and surfaces any stage worker panics.  Call
    /// [`ServerHandle::halt`] first, or this blocks until a client halts
    /// the daemon.
    ///
    /// Every teardown step runs even when an earlier one failed — the
    /// hosted backend is always shut down — and all problems are reported
    /// together.
    pub fn join(self) -> Result<(), AllocationError> {
        let mut problems: Vec<String> = Vec::new();
        if let Some(handle) = self.accept.lock().take() {
            if handle.join().is_err() {
                problems.push("ypd accept loop panicked".to_string());
            }
        }
        let sessions: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.sessions.lock());
        let mut panicked = self.shared.reaped_panics.load(Ordering::Relaxed);
        for session in sessions {
            if session.join().is_err() {
                panicked += 1;
            }
        }
        if panicked > 0 {
            problems.push(format!(
                "{panicked} ypd session(s) panicked during the daemon's lifetime"
            ));
        }
        if let Err(e) = self.shared.manager.shutdown() {
            problems.push(e.to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(AllocationError::Internal(problems.join("; ")))
        }
    }
}

/// Binds `addr` and serves `manager` over the wire protocol until halted.
///
/// `addr.port == 0` binds an ephemeral port; read it back with
/// [`ServerHandle::local_addr`].
pub fn serve(
    manager: Box<dyn ResourceManager>,
    addr: &StageAddress,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(manager, None, addr)
}

/// Binds `addr` and serves a *federated* backend: the full client protocol
/// plus the inter-daemon [`ClientFrame::Delegate`] /
/// [`ClientFrame::SyncPools`] vocabulary peer daemons speak.  The backend
/// is shared — the caller keeps its `Arc` for inspection (an `Arc` of a
/// manager is itself a manager).
pub fn serve_federated(
    backend: Arc<crate::federation::FederatedBackend>,
    addr: &StageAddress,
) -> Result<ServerHandle, AllocationError> {
    serve_inner(Box::new(backend.clone()), Some(backend), addr)
}

fn serve_inner(
    manager: Box<dyn ResourceManager>,
    federation: Option<Arc<crate::federation::FederatedBackend>>,
    addr: &StageAddress,
) -> Result<ServerHandle, AllocationError> {
    let listener = TcpListener::bind((addr.host.as_str(), addr.port))
        .map_err(|e| AllocationError::Network(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| AllocationError::Network(format!("local_addr: {e}")))?;
    // The wake connection must reach the listener even when it is bound to
    // the unspecified address — via the loopback of the same family (an
    // IPv6-only listener never accepts an IPv4 wake).
    let wake_addr = if local.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if local.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        SocketAddr::new(loopback, local.port())
    } else {
        local
    };
    let shared = Arc::new(ServerShared {
        manager,
        federation,
        draining: AtomicBool::new(false),
        wake_addr,
        sessions: Mutex::new(Vec::new()),
        reaped_panics: AtomicU64::new(0),
    });

    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let session_shared = accept_shared.clone();
            let handle = std::thread::spawn(move || run_session(session_shared, stream));
            let mut sessions = accept_shared.sessions.lock();
            // Reap finished sessions so a long-lived daemon serving many
            // short connections does not accumulate handles forever —
            // joining each reaped handle (it has already finished, so this
            // cannot block) keeps their panics from vanishing.
            let mut index = 0;
            while index < sessions.len() {
                if sessions[index].is_finished() {
                    if sessions.swap_remove(index).join().is_err() {
                        accept_shared.reaped_panics.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    index += 1;
                }
            }
            sessions.push(handle);
        }
    });

    Ok(ServerHandle {
        addr: local,
        shared,
        accept: Mutex::new(Some(accept)),
    })
}

/// Per-connection session state: the reply socket, the session-scoped
/// ticket table mapping wire ticket ids to backend tickets, and the
/// allocation leases the session currently holds.
struct SessionState {
    writer: Mutex<TcpStream>,
    tickets: Mutex<HashMap<u64, Ticket>>,
    /// Allocations delivered to this client and not yet released, keyed by
    /// access key.  Allocations are *session leases*: whatever is still
    /// here when the session ends is handed back, so a client that
    /// crashes (even one whose Outcome reply raced its disconnect) cannot
    /// strand a machine claim.
    leases: Mutex<HashMap<String, Allocation>>,
    next_ticket: AtomicU64,
}

impl SessionState {
    /// Best-effort reply; a vanished client is detected by the read loop.
    fn send(&self, frame: &ServerFrame) {
        let mut writer = self.writer.lock();
        let _ = write_frame(&mut *writer, frame);
    }

    fn issue(&self, ticket: Ticket) -> u64 {
        let wire_id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.tickets.lock().insert(wire_id, ticket);
        wire_id
    }

    /// Records the leases of a redeemed outcome, then delivers it.  The
    /// lease is taken *before* the reply leaves, so there is no window in
    /// which the allocation belongs to nobody.
    fn deliver_outcome(&self, corr: RequestId, outcome: crate::api::QueryOutcome) {
        if let Ok(allocations) = &outcome {
            let mut leases = self.leases.lock();
            for allocation in allocations {
                leases.insert(allocation.access_key.0.clone(), allocation.clone());
            }
        }
        self.send(&ServerFrame::Outcome { corr, outcome });
    }

    /// Same lease-before-reply discipline for a delegated outcome: the
    /// allocations are leased to the *peer daemon's* session, so a peer
    /// that vanishes holding them strands nothing here.
    fn deliver_delegated(
        &self,
        corr: RequestId,
        outcome: crate::api::QueryOutcome,
        state: crate::message::RoutingState,
    ) {
        if let Ok(allocations) = &outcome {
            let mut leases = self.leases.lock();
            for allocation in allocations {
                leases.insert(allocation.access_key.0.clone(), allocation.clone());
            }
        }
        self.send(&ServerFrame::Delegated {
            corr,
            outcome,
            ttl: state.ttl,
            visited: state.visited,
        });
    }
}

fn run_session(shared: Arc<ServerShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);

    // --- Version negotiation: the first frame must be a Hello. ---
    let hello = match read_client_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        _ => return,
    };
    let reply_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let state = Arc::new(SessionState {
        writer: Mutex::new(reply_stream),
        tickets: Mutex::new(HashMap::new()),
        leases: Mutex::new(HashMap::new()),
        next_ticket: AtomicU64::new(0),
    });
    match hello {
        ClientFrame::Hello {
            min_version,
            max_version,
        } => match negotiate(min_version, max_version) {
            Some(version) => state.send(&ServerFrame::HelloAck { version }),
            None => {
                state.send(&ServerFrame::HelloReject {
                    message: format!(
                        "no common protocol version: client speaks {min_version}..={max_version}, \
                         server speaks {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}"
                    ),
                });
                return;
            }
        },
        _ => {
            state.send(&ServerFrame::HelloReject {
                message: "the first frame must be Hello".to_string(),
            });
            return;
        }
    }

    // --- Serve the session (until clean disconnect, transport error or
    // garbage stops the read loop). ---
    //
    // Submission workers (which can block on the live backend's admission
    // window) are counted and capped separately from redemption workers:
    // a client at the submission cap must still be able to Wait, because
    // redeeming tickets is exactly how it frees the window and gets its
    // submissions unstuck.  Capping waits cannot livelock in return — a
    // blocked wait resolves when the pipeline answers, independent of any
    // further client action.
    let mut submit_workers: Vec<JoinHandle<()>> = Vec::new();
    let mut wait_workers: Vec<JoinHandle<()>> = Vec::new();
    let _ = stream.set_read_timeout(Some(SESSION_POLL_INTERVAL));
    loop {
        // Wait (bounded) for the next frame to *start*, so even an idle
        // session observes the drain flag and ends: a draining daemon
        // settles idle sessions' tickets and leases instead of waiting
        // forever for clients — or peer daemons holding pooled links —
        // to hang up.  Once the first byte is visible, the frame is read
        // whole (under a generous per-read deadline, so a sender that
        // stalls mid-frame ends the session instead of wedging it), which
        // keeps a frame arriving in pieces from desynchronising the
        // stream.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        let next = read_client_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(SESSION_POLL_INTERVAL));
        let Ok(Some(frame)) = next else { break };
        // Reap finished workers as we go so the vectors track only live
        // threads.
        submit_workers.retain(|worker| !worker.is_finished());
        wait_workers.retain(|worker| !worker.is_finished());
        match frame {
            ClientFrame::Hello { .. } => {
                state.send(&ServerFrame::HelloReject {
                    message: "duplicate Hello".to_string(),
                });
                break;
            }
            // Submit may block on the live backend's admission window and
            // wait blocks until the outcome is ready, so both run on worker
            // threads: the session keeps reading frames meanwhile, which is
            // what lets one connection keep many requests in flight.
            ClientFrame::Submit { corr, query } => {
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    handle_submit(&shared, &state, corr, &query)
                }));
            }
            ClientFrame::SubmitBatch { corr, queries } => {
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    handle_submit_batch(&shared, &state, corr, &queries)
                }));
            }
            ClientFrame::Wait {
                corr,
                ticket,
                deadline_ms,
            } => {
                // Unknown ids are answered inline — no thread for a frame
                // that cannot block (and no thread-flood from bogus ids);
                // the worker's own atomic claim still decides races.
                if !state.tickets.lock().contains_key(&ticket) {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::UnknownTicket,
                    });
                    continue;
                }
                if wait_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let shared = shared.clone();
                let state = state.clone();
                wait_workers.push(std::thread::spawn(move || {
                    handle_wait(&shared, &state, corr, ticket, deadline_ms)
                }));
            }
            ClientFrame::Poll { corr, ticket } => {
                // The ticket is read, not claimed: concurrent polls of the
                // same ticket race inside the backend, where the loser
                // sees UnknownTicket — the same contract as concurrent
                // in-process redemption.  The session table lock is NOT
                // held across try_poll, which on a federated backend can
                // settle a failure through the WAN.
                let backend_ticket = match state.tickets.lock().get(&ticket).copied() {
                    None => {
                        state.send(&ServerFrame::Error {
                            corr,
                            error: AllocationError::UnknownTicket,
                        });
                        continue;
                    }
                    Some(backend_ticket) => backend_ticket,
                };
                let poll = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.try_poll(backend_ticket) {
                        None => state.send(&ServerFrame::Pending { corr }),
                        Some(outcome) => {
                            state.tickets.lock().remove(&ticket);
                            state.deliver_outcome(corr, outcome);
                        }
                    }
                };
                // On a federated daemon a poll can block on peer I/O, so
                // it runs on a worker like Wait does; in-process backends
                // answer inline.
                if shared.federation.is_some() {
                    if wait_workers.len() >= MAX_SESSION_WORKERS {
                        state.send(&session_overloaded(corr));
                        continue;
                    }
                    wait_workers.push(std::thread::spawn(poll));
                } else {
                    poll();
                }
            }
            ClientFrame::Release { corr, allocation } => {
                let release = {
                    let shared = shared.clone();
                    let state = state.clone();
                    move || match shared.manager.release(&allocation) {
                        Ok(()) => {
                            state.leases.lock().remove(&allocation.access_key.0);
                            state.send(&ServerFrame::Released { corr });
                        }
                        Err(error) => state.send(&ServerFrame::Error { corr, error }),
                    }
                };
                // Releasing a delegated allocation crosses the wire to the
                // owning domain: a worker keeps the frame loop responsive.
                if shared.federation.is_some() {
                    if submit_workers.len() >= MAX_SESSION_WORKERS {
                        state.send(&session_overloaded(corr));
                        continue;
                    }
                    submit_workers.push(std::thread::spawn(release));
                } else {
                    release();
                }
            }
            ClientFrame::Stats { corr } => {
                state.send(&ServerFrame::StatsReply {
                    corr,
                    stats: shared.manager.stats(),
                });
            }
            ClientFrame::Shutdown { corr } => {
                state.send(&ServerFrame::Ack { corr });
                break;
            }
            ClientFrame::Halt { corr } => {
                state.send(&ServerFrame::Ack { corr });
                shared.begin_drain();
                break;
            }
            // A peer daemon delegating a query here.  Runs on a submit
            // worker: resolving it blocks on the local backend and may hop
            // onward to further peers.
            ClientFrame::Delegate {
                corr,
                query,
                ttl,
                visited,
            } => {
                let Some(federation) = shared.federation.clone() else {
                    state.send(&ServerFrame::Error {
                        corr,
                        error: AllocationError::Protocol(
                            "this daemon is not federated (no --domain/--peer)".to_string(),
                        ),
                    });
                    continue;
                };
                if submit_workers.len() >= MAX_SESSION_WORKERS {
                    state.send(&session_overloaded(corr));
                    continue;
                }
                let state = state.clone();
                submit_workers.push(std::thread::spawn(move || {
                    let (outcome, routing) = federation.handle_delegate(&query, ttl, visited);
                    state.deliver_delegated(corr, outcome, routing);
                }));
            }
            // A peer daemon advertising its domain and pool names; answer
            // with ours.  Inline: no blocking work.
            ClientFrame::SyncPools {
                corr,
                domain,
                pools,
            } => match &shared.federation {
                None => state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Protocol(
                        "this daemon is not federated (no --domain/--peer)".to_string(),
                    ),
                }),
                Some(federation) => {
                    // Record the inbound advertisement for observability;
                    // the address is unknown on an inbound connection, so
                    // delegation candidates still come from outbound links
                    // only.
                    federation.record_inbound_advertisement(&domain, &pools);
                    state.send(&ServerFrame::PoolsSynced {
                        corr,
                        domain: federation.domain().to_string(),
                        pools: federation.local_pools(),
                    });
                }
            },
        }
    }

    // --- Graceful session teardown. ---
    //
    // Settling and joining must interleave: a submit worker can be blocked
    // on the live backend's admission window, whose permits are held by
    // the very tickets sitting abandoned in this session's table.  Joining
    // first would deadlock; settling once would miss the tickets those
    // unblocked workers issue afterwards.  So: settle (freeing permits),
    // reap, repeat until every worker finished, then sweep one last time.
    // A stuck backend cannot wedge the daemon forever — after a generous
    // deadline the remaining workers are detached instead of joined.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        settle_abandoned_tickets(&shared, &state, deadline);
        submit_workers.retain(|worker| !worker.is_finished());
        wait_workers.retain(|worker| !worker.is_finished());
        if submit_workers.is_empty() && wait_workers.is_empty() {
            break;
        }
        if std::time::Instant::now() >= deadline {
            // Leave the stragglers detached.  Settlement is best-effort
            // past this point: only a backend wedged beyond the whole
            // teardown budget can still strand a claim.
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Final sweep for tickets issued by workers that finished after the
    // last in-loop settle, on a small fresh budget of its own.
    settle_abandoned_tickets(
        &shared,
        &state,
        std::time::Instant::now() + Duration::from_secs(5),
    );
    // Hand back every allocation lease the client still held — including
    // outcomes whose delivery raced the disconnect (the lease is recorded
    // before the reply is written, so nothing falls between the cracks).
    let leaked: Vec<Allocation> = state.leases.lock().drain().map(|(_, a)| a).collect();
    for allocation in &leaked {
        let _ = shared.manager.release(allocation);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Overload reply for a session that exceeded a blocking-worker cap.
fn session_overloaded(corr: RequestId) -> ServerFrame {
    ServerFrame::Error {
        corr,
        error: AllocationError::Internal(format!(
            "session has {MAX_SESSION_WORKERS} blocking requests of this kind in \
             flight; await replies before sending more"
        )),
    }
}

/// Settles every ticket currently abandoned in the session table: awaits
/// the outcomes (bounded by `deadline`, so a wedged backend cannot hold
/// the session thread hostage) and hands the allocations straight back, so
/// no machine claim (or live-backend window permit) leaks past the session.
/// A ticket whose wait times out goes *back* into the table — still
/// redeemable inside the backend — so a later settling round can retry it
/// instead of dropping the claim on the floor.
fn settle_abandoned_tickets(
    shared: &ServerShared,
    state: &SessionState,
    deadline: std::time::Instant,
) {
    let abandoned: Vec<(u64, Ticket)> = state.tickets.lock().drain().collect();
    for (wire_id, ticket) in abandoned {
        let budget = deadline.saturating_duration_since(std::time::Instant::now());
        match shared.manager.wait_deadline(ticket, budget) {
            Some(Ok(allocations)) => {
                for allocation in &allocations {
                    let _ = shared.manager.release(allocation);
                }
            }
            Some(Err(_)) => {}
            None => {
                state.tickets.lock().insert(wire_id, ticket);
            }
        }
    }
}

fn handle_submit(shared: &ServerShared, state: &SessionState, corr: RequestId, query: &str) {
    // The trait's own text path: parse errors map exactly as they would for
    // an in-process client.
    match shared.manager.submit_text(query) {
        Ok(ticket) => {
            let wire_id = state.issue(ticket);
            state.send(&ServerFrame::Submitted {
                corr,
                ticket: wire_id,
            });
        }
        Err(error) => state.send(&ServerFrame::Error { corr, error }),
    }
}

fn handle_submit_batch(
    shared: &ServerShared,
    state: &SessionState,
    corr: RequestId,
    queries: &[String],
) {
    let mut parsed = Vec::with_capacity(queries.len());
    for query in queries {
        match actyp_query::parse_query(query) {
            Ok(q) => parsed.push(q),
            Err(e) => {
                state.send(&ServerFrame::Error {
                    corr,
                    error: AllocationError::Parse(e.to_string()),
                });
                return;
            }
        }
    }
    match shared.manager.submit_batch(parsed) {
        Ok(tickets) => {
            let wire_ids = tickets.into_iter().map(|t| state.issue(t)).collect();
            state.send(&ServerFrame::BatchSubmitted {
                corr,
                tickets: wire_ids,
            });
        }
        Err(error) => state.send(&ServerFrame::Error { corr, error }),
    }
}

fn handle_wait(
    shared: &ServerShared,
    state: &SessionState,
    corr: RequestId,
    ticket: u64,
    deadline_ms: Option<u64>,
) {
    let backend_ticket = match state.tickets.lock().remove(&ticket) {
        Some(t) => t,
        None => {
            state.send(&ServerFrame::Error {
                corr,
                error: AllocationError::UnknownTicket,
            });
            return;
        }
    };
    match deadline_ms {
        None => {
            let outcome = shared.manager.wait(backend_ticket);
            state.deliver_outcome(corr, outcome);
        }
        Some(ms) => match shared
            .manager
            .wait_deadline(backend_ticket, Duration::from_millis(ms))
        {
            Some(outcome) => state.deliver_outcome(corr, outcome),
            None => {
                // The deadline elapsed; the ticket stays redeemable.
                state.tickets.lock().insert(ticket, backend_ticket);
                state.send(&ServerFrame::TimedOut { corr });
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The correlation id a response frame answers, if any.  Also used by the
/// federation peer links, whose request/response exchanges ride the same
/// protocol.
pub(crate) fn corr_of(frame: &ServerFrame) -> Option<RequestId> {
    match frame {
        ServerFrame::HelloAck { .. } | ServerFrame::HelloReject { .. } => None,
        ServerFrame::Submitted { corr, .. }
        | ServerFrame::BatchSubmitted { corr, .. }
        | ServerFrame::Outcome { corr, .. }
        | ServerFrame::Pending { corr }
        | ServerFrame::TimedOut { corr }
        | ServerFrame::Released { corr }
        | ServerFrame::StatsReply { corr, .. }
        | ServerFrame::Ack { corr }
        | ServerFrame::Error { corr, .. }
        | ServerFrame::Delegated { corr, .. }
        | ServerFrame::PoolsSynced { corr, .. } => Some(*corr),
    }
}

struct ClientShared {
    /// Requests awaiting their response frame, by correlation id.  The
    /// reader thread routes each incoming frame to its sender; dropping a
    /// sender (during connection teardown) wakes the waiting request with
    /// a receive error.
    pending: Mutex<HashMap<u64, Sender<ServerFrame>>>,
    /// Why the connection died, once it has.
    dead: Mutex<Option<String>>,
}

impl ClientShared {
    /// Records the death reason and wakes every in-flight request.
    ///
    /// The `dead` lock is held across the `pending` clear so no request can
    /// slip between the two: [`RemoteBackend::request`] registers itself in
    /// `pending` while holding `dead`, so it either registers before the
    /// clear (and is woken by it) or observes the death reason and never
    /// blocks.
    fn poison(&self, reason: String) {
        let mut dead = self.dead.lock();
        dead.get_or_insert(reason);
        self.pending.lock().clear();
    }

    fn death_error(&self) -> AllocationError {
        AllocationError::Network(
            self.dead
                .lock()
                .clone()
                .unwrap_or_else(|| "connection closed".to_string()),
        )
    }
}

/// The [`ResourceManager`] surface served by a remote `ypd` daemon over one
/// TCP connection.
///
/// All trait methods are safe to call from many threads at once; requests
/// are correlated by [`RequestId`], so several tickets can be in flight on
/// the single socket — the paper's pipelining across a network hop.
/// Tickets are branded per connection: redeeming a remote ticket on a
/// different backend (or vice versa) fails with
/// [`AllocationError::UnknownTicket`].
///
/// [`RemoteBackend::stats`] degrades to an empty snapshot if the
/// connection has died (the trait method is infallible); every other
/// operation reports [`AllocationError::Network`] /
/// [`AllocationError::Protocol`] faithfully.
pub struct RemoteBackend {
    writer: Mutex<TcpStream>,
    shared: Arc<ClientShared>,
    corr: RequestIdGenerator,
    brand: u64,
    version: u16,
    closed: AtomicBool,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteBackend {
    /// Connects to a `ypd` daemon and negotiates the protocol version.
    pub fn connect(addr: &StageAddress) -> Result<Self, AllocationError> {
        let mut stream = TcpStream::connect((addr.host.as_str(), addr.port))
            .map_err(|e| AllocationError::Network(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);

        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                min_version: MIN_SUPPORTED_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )
        .map_err(|e| AllocationError::Network(format!("hello: {e}")))?;
        let version = match read_server_frame(&mut stream) {
            Ok(Some(ServerFrame::HelloAck { version })) => version,
            Ok(Some(ServerFrame::HelloReject { message })) => {
                return Err(AllocationError::Protocol(format!(
                    "server rejected the connection: {message}"
                )))
            }
            Ok(Some(other)) => {
                return Err(AllocationError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
            Ok(None) => {
                return Err(AllocationError::Network(
                    "server closed the connection during the handshake".to_string(),
                ))
            }
            Err(e) => return Err(AllocationError::Network(format!("handshake: {e}"))),
        };

        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            dead: Mutex::new(None),
        });
        let mut read_stream = stream
            .try_clone()
            .map_err(|e| AllocationError::Network(format!("clone stream: {e}")))?;
        let reader_shared = shared.clone();
        let reader = std::thread::spawn(move || loop {
            match read_server_frame(&mut read_stream) {
                Ok(Some(frame)) => match corr_of(&frame) {
                    Some(corr) => {
                        let sender = reader_shared.pending.lock().remove(&corr.0);
                        if let Some(sender) = sender {
                            let _ = sender.send(frame);
                        }
                    }
                    None => {
                        reader_shared
                            .poison("unexpected handshake frame after connect".to_string());
                        break;
                    }
                },
                Ok(None) => {
                    reader_shared.poison("server closed the connection".to_string());
                    break;
                }
                Err(e) => {
                    reader_shared.poison(e.to_string());
                    break;
                }
            }
        });

        Ok(RemoteBackend {
            writer: Mutex::new(stream),
            shared,
            corr: RequestIdGenerator::new(),
            brand: crate::api::next_backend_brand(),
            version,
            closed: AtomicBool::new(false),
            reader: Mutex::new(Some(reader)),
        })
    }

    /// The protocol version negotiated for this connection.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Sends one request frame and blocks for the response that carries the
    /// same correlation id.  Other threads' requests interleave freely on
    /// the connection meanwhile.
    fn request(
        &self,
        build: impl FnOnce(RequestId) -> ClientFrame,
    ) -> Result<ServerFrame, AllocationError> {
        let corr = self.corr.next();
        let (tx, rx): (Sender<ServerFrame>, Receiver<ServerFrame>) = unbounded();
        {
            // Check-and-register atomically with respect to `poison` (which
            // holds `dead` while clearing `pending`): otherwise the reader
            // thread could die between our check and our insert, leaving a
            // registration nothing will ever answer — a permanent hang.
            let dead = self.shared.dead.lock();
            if dead.is_some() {
                drop(dead);
                return Err(self.shared.death_error());
            }
            self.shared.pending.lock().insert(corr.0, tx);
        }
        let frame = build(corr);
        let write_result = {
            let mut writer = self.writer.lock();
            write_frame(&mut *writer, &frame)
        };
        if let Err(e) = write_result {
            self.shared.pending.lock().remove(&corr.0);
            // `write_frame` refuses an over-limit frame with InvalidData
            // *before* sending anything, so the connection is still
            // perfectly consistent: report it against this request only
            // instead of poisoning every other in-flight one.
            if e.kind() == std::io::ErrorKind::InvalidData {
                return Err(AllocationError::Protocol(e.to_string()));
            }
            self.shared.poison(e.to_string());
            return Err(self.shared.death_error());
        }
        rx.recv().map_err(|_| self.shared.death_error())
    }

    fn check_brand(&self, ticket: Ticket) -> Result<u64, AllocationError> {
        if ticket.brand() != self.brand {
            return Err(AllocationError::UnknownTicket);
        }
        Ok(ticket.id())
    }

    fn unexpected(frame: ServerFrame) -> AllocationError {
        AllocationError::Protocol(format!("unexpected response frame: {frame:?}"))
    }

    /// Refuses a query rendering the decoder on the far side would reject,
    /// *before* it poisons the whole connection: the codec caps individual
    /// strings at [`MAX_SEQUENCE_LEN`].
    fn check_wire_text(text: &str) -> Result<(), AllocationError> {
        if text.len() > MAX_SEQUENCE_LEN {
            return Err(AllocationError::Protocol(format!(
                "query text of {} bytes exceeds the wire limit of {MAX_SEQUENCE_LEN} bytes",
                text.len()
            )));
        }
        Ok(())
    }

    /// Submits one query already rendered in the native text form — the
    /// protocol's query encoding.
    fn submit_rendered(&self, query: String) -> Result<Ticket, AllocationError> {
        Self::check_wire_text(&query)?;
        match self.request(|corr| ClientFrame::Submit { corr, query })? {
            ServerFrame::Submitted { ticket, .. } => Ok(Ticket::from_parts(self.brand, ticket)),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Asks the daemon itself to drain and exit (administrative; not part
    /// of the [`ResourceManager`] surface).  The daemon stops accepting
    /// connections; this session should [`shutdown`](ResourceManager::shutdown)
    /// afterwards so the drain can complete.
    pub fn halt_daemon(&self) -> Result<(), AllocationError> {
        match self.request(|corr| ClientFrame::Halt { corr })? {
            ServerFrame::Ack { .. } => Ok(()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Closes the transport and joins the reader thread.
    fn close_transport(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let writer = self.writer.lock();
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        let reader = self.reader.lock().take();
        if let Some(reader) = reader {
            let _ = reader.join();
        }
    }
}

impl ResourceManager for RemoteBackend {
    fn submit(&self, query: Query) -> Result<Ticket, AllocationError> {
        // The native text rendering is the protocol's query encoding.
        self.submit_rendered(query.to_string())
    }

    /// Ships the text as-is: it already *is* the wire encoding, so there is
    /// nothing to parse client-side — the server's query manager parses it
    /// once, exactly like an in-process submission, and parse errors come
    /// back through the protocol's error taxonomy.
    fn submit_text(&self, text: &str) -> Result<Ticket, AllocationError> {
        self.submit_rendered(text.to_string())
    }

    fn submit_batch(&self, queries: Vec<Query>) -> Result<Vec<Ticket>, AllocationError> {
        let rendered: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        for query in &rendered {
            Self::check_wire_text(query)?;
        }
        match self.request(|corr| ClientFrame::SubmitBatch {
            corr,
            queries: rendered,
        })? {
            ServerFrame::BatchSubmitted { tickets, .. } => Ok(tickets
                .into_iter()
                .map(|id| Ticket::from_parts(self.brand, id))
                .collect()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        let wire_id = self.check_brand(ticket)?;
        match self.request(|corr| ClientFrame::Wait {
            corr,
            ticket: wire_id,
            deadline_ms: None,
        })? {
            ServerFrame::Outcome { outcome, .. } => outcome,
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        let wire_id = match self.check_brand(ticket) {
            Ok(id) => id,
            Err(e) => return Some(Err(e)),
        };
        let deadline_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
        match self.request(|corr| ClientFrame::Wait {
            corr,
            ticket: wire_id,
            deadline_ms: Some(deadline_ms),
        }) {
            Ok(ServerFrame::Outcome { outcome, .. }) => Some(outcome),
            Ok(ServerFrame::TimedOut { .. }) => None,
            Ok(ServerFrame::Error { error, .. }) => Some(Err(error)),
            Ok(other) => Some(Err(Self::unexpected(other))),
            Err(e) => Some(Err(e)),
        }
    }

    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        let wire_id = match self.check_brand(ticket) {
            Ok(id) => id,
            Err(e) => return Some(Err(e)),
        };
        match self.request(|corr| ClientFrame::Poll {
            corr,
            ticket: wire_id,
        }) {
            Ok(ServerFrame::Outcome { outcome, .. }) => Some(outcome),
            Ok(ServerFrame::Pending { .. }) => None,
            Ok(ServerFrame::Error { error, .. }) => Some(Err(error)),
            Ok(other) => Some(Err(Self::unexpected(other))),
            Err(e) => Some(Err(e)),
        }
    }

    fn release(&self, allocation: &crate::allocation::Allocation) -> Result<(), AllocationError> {
        match self.request(|corr| ClientFrame::Release {
            corr,
            allocation: allocation.clone(),
        })? {
            ServerFrame::Released { .. } => Ok(()),
            ServerFrame::Error { error, .. } => Err(error),
            other => Err(Self::unexpected(other)),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        match self.request(|corr| ClientFrame::Stats { corr }) {
            Ok(ServerFrame::StatsReply { stats, .. }) => stats,
            _ => StatsSnapshot::default(),
        }
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        if self.closed.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Tell the server so it can settle the session eagerly; a dead
        // connection is already shut down as far as the client can tell.
        let result = self.request(|corr| ClientFrame::Shutdown { corr });
        self.close_transport();
        match result {
            Ok(ServerFrame::Ack { .. }) | Err(AllocationError::Network(_)) => Ok(()),
            Ok(ServerFrame::Error { error, .. }) => Err(error),
            Ok(other) => Err(Self::unexpected(other)),
            Err(e) => Err(e),
        }
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Closing the socket ends the server session, which settles any
        // tickets this client abandoned.
        self.close_transport();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BackendKind, PipelineBuilder};
    use actyp_grid::{FleetSpec, SyntheticFleet};
    use std::io::Write;

    fn fleet_db(n: usize, seed: u64) -> actyp_grid::SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), seed)
            .generate()
            .into_shared()
    }

    fn loopback() -> StageAddress {
        StageAddress::new("127.0.0.1", 0)
    }

    fn serve_kind(kind: BackendKind, machines: usize, seed: u64) -> ServerHandle {
        PipelineBuilder::new()
            .database(fleet_db(machines, seed))
            .serve(&loopback(), kind)
            .unwrap()
    }

    fn paper_text() -> String {
        Query::paper_example().to_string()
    }

    #[test]
    fn remote_round_trip_over_every_hosted_backend() {
        for kind in BackendKind::ALL {
            let server = serve_kind(kind, 300, 1);
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            assert_eq!(remote.protocol_version(), PROTOCOL_VERSION);
            let ticket = remote.submit_text(&paper_text()).unwrap();
            let allocations = remote.wait(ticket).unwrap();
            assert_eq!(allocations.len(), 1, "{kind}");
            assert!(allocations[0].machine_name.contains("sun"), "{kind}");
            remote.release(&allocations[0]).unwrap();
            let stats = remote.stats();
            assert_eq!(stats.requests, 1, "{kind}");
            assert_eq!(stats.releases, 1, "{kind}");
            remote.halt_daemon().unwrap();
            remote.shutdown().unwrap();
            server.join().unwrap();
        }
    }

    #[test]
    fn remote_tickets_pipeline_on_one_connection() {
        let server = PipelineBuilder::new()
            .database(fleet_db(400, 2))
            .query_managers(2)
            .serve(&loopback(), BackendKind::Live)
            .unwrap();
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        let query = Query::paper_example();

        // Several tickets in flight on the socket before the first wait.
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| remote.submit(query.clone()).unwrap())
            .collect();
        assert!(
            remote.stats().in_flight >= 2,
            "server-side stats must show overlapping tickets"
        );
        for ticket in tickets {
            let allocations = remote.wait(ticket).unwrap();
            remote.release(&allocations[0]).unwrap();
        }
        assert_eq!(remote.stats().allocations, 5);
        assert_eq!(remote.stats().in_flight, 0);

        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn wait_deadline_times_out_and_the_ticket_survives() {
        let server = serve_kind(BackendKind::Live, 200, 3);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        let ticket = remote.submit_text(&paper_text()).unwrap();
        // A zero deadline may or may not catch the outcome; a generous one
        // must.  Either way the ticket remains redeemable after a timeout.
        if remote.wait_deadline(ticket, Duration::ZERO).is_none() {
            let outcome = remote
                .wait_deadline(ticket, Duration::from_secs(10))
                .expect("resolves within the deadline");
            let allocations = outcome.unwrap();
            remote.release(&allocations[0]).unwrap();
        }
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn remote_errors_cross_the_wire_intact() {
        let server = serve_kind(BackendKind::Embedded, 100, 4);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        // Allocation failure.
        let err = remote
            .submit_text_wait("punch.rsrc.arch = cray\n")
            .unwrap_err();
        assert_eq!(err, AllocationError::NoSuchResources);
        // Parse failure (parsed server side).
        let ticket_err = remote.submit_text("garbage").unwrap_err();
        assert!(matches!(ticket_err, AllocationError::Parse(_)));
        // Unknown-ticket and double-release failures.
        let ticket = remote.submit_text(&paper_text()).unwrap();
        let allocations = remote.wait(ticket).unwrap();
        assert_eq!(
            remote.wait(ticket).unwrap_err(),
            AllocationError::UnknownTicket
        );
        remote.release(&allocations[0]).unwrap();
        assert_eq!(
            remote.release(&allocations[0]).unwrap_err(),
            AllocationError::UnknownAllocation
        );
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn remote_tickets_are_branded_per_connection() {
        let server = serve_kind(BackendKind::Embedded, 200, 5);
        let first = RemoteBackend::connect(&server.local_addr()).unwrap();
        let second = RemoteBackend::connect(&server.local_addr()).unwrap();
        let ticket = first.submit_text(&paper_text()).unwrap();
        assert_eq!(
            second.wait(ticket).unwrap_err(),
            AllocationError::UnknownTicket
        );
        assert!(first.wait(ticket).is_ok());
        first.halt_daemon().unwrap();
        first.shutdown().unwrap();
        second.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn server_side_ticket_tables_are_session_scoped() {
        let server = serve_kind(BackendKind::Embedded, 200, 21);
        let addr = server.local_addr();
        let first = RemoteBackend::connect(&addr).unwrap();
        let ticket = first.submit_text(&paper_text()).unwrap();

        // A raw second session replays the FIRST session's wire ticket id,
        // bypassing the client-side brand check entirely: the server must
        // refuse it from its own (empty) session table.
        let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
        write_frame(
            &mut raw,
            &ClientFrame::Hello {
                min_version: PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_frame(&mut raw).unwrap(),
            Some(ServerFrame::HelloAck { .. })
        ));
        write_frame(
            &mut raw,
            &ClientFrame::Wait {
                corr: RequestId(1),
                ticket: ticket.id(),
                deadline_ms: None,
            },
        )
        .unwrap();
        match read_server_frame(&mut raw).unwrap() {
            Some(ServerFrame::Error { error, .. }) => {
                assert_eq!(error, AllocationError::UnknownTicket);
            }
            other => panic!("expected UnknownTicket, got {other:?}"),
        }
        drop(raw);

        // The issuing session still redeems it.
        let allocations = first.wait(ticket).unwrap();
        first.release(&allocations[0]).unwrap();
        first.halt_daemon().unwrap();
        first.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn abandoned_blocked_submissions_do_not_wedge_the_drain() {
        // A raw client floods more submissions than the live backend's
        // admission window and vanishes without redeeming anything.  The
        // blocked submit workers' permits are held by the abandoned
        // tickets; teardown must settle and join iteratively or the
        // session (and the whole drain) wedges forever.
        let db = fleet_db(300, 22);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .window(2)
            .serve(&loopback(), BackendKind::Live)
            .unwrap();
        let addr = server.local_addr();
        {
            let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            write_frame(
                &mut raw,
                &ClientFrame::Hello {
                    min_version: PROTOCOL_VERSION,
                    max_version: PROTOCOL_VERSION,
                },
            )
            .unwrap();
            assert!(matches!(
                read_server_frame(&mut raw).unwrap(),
                Some(ServerFrame::HelloAck { .. })
            ));
            for i in 0..5 {
                write_frame(
                    &mut raw,
                    &ClientFrame::Submit {
                        corr: RequestId(i),
                        query: paper_text(),
                    },
                )
                .unwrap();
            }
            // Dropped without reading replies or redeeming a single ticket.
        }
        server.halt();
        server.join().unwrap();
        // Every allocation the abandoned submissions produced was settled.
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn abandoned_sessions_release_their_allocations() {
        let db = fleet_db(200, 6);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        {
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            let _ticket = remote.submit_text(&paper_text()).unwrap();
            // Dropped without wait/release: the client vanishes.
        }
        server.halt();
        server.join().unwrap();
        // The session settled the abandoned ticket: nothing stays claimed.
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn redeemed_but_unreleased_allocations_return_with_the_session() {
        // The nastier variant: the client *redeems* the outcome (so the
        // ticket has left the session table) and then vanishes without
        // releasing.  The allocation is a session lease, so teardown hands
        // it back — including when the Outcome delivery itself raced the
        // disconnect.
        let db = fleet_db(200, 7);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        {
            let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
            let ticket = remote.submit_text(&paper_text()).unwrap();
            let allocations = remote.wait(ticket).unwrap();
            assert_eq!(allocations.len(), 1);
            // Dropped holding the allocation.
        }
        server.halt();
        server.join().unwrap();
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn disconnect_racing_an_in_flight_wait_leaks_nothing() {
        // Raw client: submit, read Submitted, fire a Wait, and hang up
        // without reading the Outcome.  The wait worker has already pulled
        // the ticket out of the session table, so only the lease mechanism
        // can return the allocation.
        let db = fleet_db(200, 8);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        let addr = server.local_addr();
        {
            let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            write_frame(
                &mut raw,
                &ClientFrame::Hello {
                    min_version: PROTOCOL_VERSION,
                    max_version: PROTOCOL_VERSION,
                },
            )
            .unwrap();
            assert!(matches!(
                read_server_frame(&mut raw).unwrap(),
                Some(ServerFrame::HelloAck { .. })
            ));
            write_frame(
                &mut raw,
                &ClientFrame::Submit {
                    corr: RequestId(0),
                    query: paper_text(),
                },
            )
            .unwrap();
            let ticket = match read_server_frame(&mut raw).unwrap() {
                Some(ServerFrame::Submitted { ticket, .. }) => ticket,
                other => panic!("expected Submitted, got {other:?}"),
            };
            write_frame(
                &mut raw,
                &ClientFrame::Wait {
                    corr: RequestId(1),
                    ticket,
                    deadline_ms: None,
                },
            )
            .unwrap();
            // Dropped without reading the Outcome.
        }
        server.halt();
        server.join().unwrap();
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 0);
    }

    #[test]
    fn version_negotiation_rejects_a_future_only_client() {
        let server = serve_kind(BackendKind::Embedded, 50, 7);
        let addr = server.local_addr();
        let mut stream = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                min_version: PROTOCOL_VERSION + 1,
                max_version: PROTOCOL_VERSION + 9,
            },
        )
        .unwrap();
        match read_server_frame(&mut stream).unwrap() {
            Some(ServerFrame::HelloReject { message }) => {
                assert!(message.contains("no common protocol version"), "{message}");
            }
            other => panic!("expected HelloReject, got {other:?}"),
        }
        drop(stream);
        server.halt();
        server.join().unwrap();
    }

    #[test]
    fn garbage_on_the_socket_does_not_kill_the_daemon() {
        let server = serve_kind(BackendKind::Embedded, 50, 8);
        let addr = server.local_addr();
        {
            let mut stream = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
            stream.write_all(&[0xFF; 64]).unwrap();
        }
        // The daemon survives and serves a well-behaved client afterwards.
        let remote = RemoteBackend::connect(&addr).unwrap();
        let allocations = remote.submit_text_wait(&paper_text()).unwrap();
        remote.release(&allocations[0]).unwrap();
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn halt_stops_the_daemon_and_new_connections_fail() {
        let server = serve_kind(BackendKind::Embedded, 50, 9);
        let addr = server.local_addr();
        let remote = RemoteBackend::connect(&addr).unwrap();
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
        // The listener is gone: connecting now fails (or is immediately
        // closed before any HelloAck).
        assert!(RemoteBackend::connect(&addr).is_err());
    }

    #[test]
    fn shutdown_is_idempotent_and_poisons_later_calls() {
        let server = serve_kind(BackendKind::Embedded, 100, 10);
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        remote.shutdown().unwrap();
        remote.shutdown().unwrap();
        let err = remote.submit_text(&paper_text()).unwrap_err();
        assert!(matches!(err, AllocationError::Network(_)), "{err:?}");
        server.halt();
        server.join().unwrap();
    }
}
