//! Deterministic pseudo-random number generation for the simulations.
//!
//! Every experiment in the benchmark harness must be reproducible from a
//! single `u64` seed, so the kernel ships its own small generator instead of
//! depending on an external crate whose output could change between versions.
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the standard recommendation for initialising xoshiro state.
//!
//! Besides uniform variates the module provides the handful of distributions
//! the ActYP workloads need: exponential inter-arrival times, normal and
//! lognormal service times, and Pareto tails for the CPU-time distribution of
//! Figure 9.

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// The generator is `Clone` so that callers can fork reproducible
/// sub-streams; prefer [`Rng::split`] for that, which decorrelates the child
/// stream from the parent.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero words, but guard anyway.
        if s == [0, 0, 0, 0] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Derives an independent child generator.  The child is seeded from the
    /// parent's output stream, so repeated calls yield distinct streams while
    /// remaining a pure function of the original seed.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]`; never returns zero (safe for `ln`).
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)`.  `bound` of zero returns zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's nearly-divisionless method with rejection for exactness.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed variate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// Standard normal variate (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto variate with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        x_min / self.f64_open().powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a slice, if any.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut sibling = parent1.split();
        assert_ne!(c1.next_u64(), sibling.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(11);
        for bound in [1u64, 2, 3, 7, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_u64_inclusive() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(rng.range_u64(5, 5), 5);
        assert_eq!(rng.range_u64(9, 3), 9);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::new(21);
        let n = 200_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.05 * mean,
            "observed mean {observed}"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Rng::new(22);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng::new(23);
        for _ in 0..10_000 {
            assert!(rng.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = Rng::new(24);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.lognormal(1.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal should be right-skewed");
    }

    #[test]
    fn chance_probability_is_close() {
        let mut rng = Rng::new(25);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "observed {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(26);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = Rng::new(27);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42u8]), Some(&42));
    }
}
