//! Queueing building blocks for the service-time model.
//!
//! The ActYP prototype in the paper ran every pipeline component on a single
//! 12-processor Alpha server; clients observed response times that grow with
//! load because requests queue behind each other at the scheduling processes.
//! These helpers model that effect without simulating individual CPU
//! instructions: a [`FcfsServer`] is a single serially-reused resource (one
//! scheduling process, one pool manager thread, …) and a [`MultiServer`]
//! models a host with `n` processors on which independent processes can run
//! concurrently.
//!
//! Both are *time-function* servers: given an arrival time and a service
//! demand they return the completion time, updating their internal
//! availability horizon.  This is exact for FCFS queues and keeps the event
//! count in the simulation proportional to the number of requests rather than
//! the number of queue inspections.

use crate::time::{SimDuration, SimTime};

/// A single first-come-first-served service station.
#[derive(Debug, Clone, Default)]
pub struct FcfsServer {
    next_free: SimTime,
    busy: SimDuration,
    served: u64,
}

impl FcfsServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves a request that arrives at `arrival` and needs `demand` of
    /// service.  Returns the completion time.
    pub fn serve(&mut self, arrival: SimTime, demand: SimDuration) -> SimTime {
        let start = arrival.max(self.next_free);
        let done = start + demand;
        self.next_free = done;
        self.busy += demand;
        self.served += 1;
        done
    }

    /// Time at which the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilisation over the interval `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

/// A host with `n` identical processors serving independent requests.
///
/// Each request occupies one processor for its service demand; requests are
/// dispatched to the processor that becomes free first (equivalent to a
/// single FCFS queue feeding `n` servers).
#[derive(Debug, Clone)]
pub struct MultiServer {
    processors: Vec<SimTime>,
    busy: SimDuration,
    served: u64,
}

impl MultiServer {
    /// Creates a host with `n` processors (at least one).
    pub fn new(n: usize) -> Self {
        MultiServer {
            processors: vec![SimTime::ZERO; n.max(1)],
            busy: SimDuration::ZERO,
            served: 0,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.processors.len()
    }

    /// Serves a request arriving at `arrival` with the given demand and
    /// returns its completion time.
    pub fn serve(&mut self, arrival: SimTime, demand: SimDuration) -> SimTime {
        // Pick the processor that frees up first (lowest horizon).
        let idx = self
            .processors
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one processor");
        let start = arrival.max(self.processors[idx]);
        let done = start + demand;
        self.processors[idx] = done;
        self.busy += demand;
        self.served += 1;
        done
    }

    /// Number of requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Aggregate busy time across processors.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Mean utilisation across processors over `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (horizon.as_secs_f64() * self.processors.len() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FcfsServer::new();
        assert_eq!(s.serve(t(100), d(50)), t(150));
    }

    #[test]
    fn busy_server_queues_requests() {
        let mut s = FcfsServer::new();
        assert_eq!(s.serve(t(0), d(100)), t(100));
        // Arrives while busy: waits until 100.
        assert_eq!(s.serve(t(10), d(30)), t(130));
        // Arrives after the backlog clears.
        assert_eq!(s.serve(t(500), d(10)), t(510));
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_time(), d(140));
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut s = FcfsServer::new();
        s.serve(t(0), d(500));
        assert!((s.utilisation(t(1000)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilisation(SimTime::ZERO), 0.0);
        assert!(s.utilisation(t(100)) <= 1.0);
    }

    #[test]
    fn multi_server_runs_requests_in_parallel() {
        let mut m = MultiServer::new(2);
        // Two simultaneous arrivals on two processors finish together.
        assert_eq!(m.serve(t(0), d(100)), t(100));
        assert_eq!(m.serve(t(0), d(100)), t(100));
        // A third must wait for a processor.
        assert_eq!(m.serve(t(0), d(100)), t(200));
        assert_eq!(m.served(), 3);
    }

    #[test]
    fn multi_server_with_one_processor_is_fcfs() {
        let mut m = MultiServer::new(1);
        let mut s = FcfsServer::new();
        let arrivals = [(0u64, 50u64), (10, 20), (200, 5), (201, 100)];
        for (a, dem) in arrivals {
            assert_eq!(m.serve(t(a), d(dem)), s.serve(t(a), d(dem)));
        }
    }

    #[test]
    fn zero_processors_is_clamped_to_one() {
        let m = MultiServer::new(0);
        assert_eq!(m.processors(), 1);
    }

    #[test]
    fn multi_server_utilisation() {
        let mut m = MultiServer::new(4);
        for _ in 0..4 {
            m.serve(t(0), d(250));
        }
        assert!((m.utilisation(t(1000)) - 0.25).abs() < 1e-9);
    }
}
