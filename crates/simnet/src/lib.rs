//! # actyp-simnet — discrete-event simulation kernel
//!
//! This crate is the substrate on which the ActYP reproduction runs its
//! controlled experiments.  The original paper measured a production
//! deployment (Sun UltraSPARC clients against a 12-processor Alpha server,
//! plus one wide-area configuration between Purdue and UPC).  We do not have
//! that testbed, so the experiments are reproduced on a deterministic
//! discrete-event simulation of the same structure: hosts with per-operation
//! service costs, LAN/WAN links with configurable latency, and closed-loop
//! clients.
//!
//! The kernel is intentionally small and generic:
//!
//! * [`time`] — virtual time ([`SimTime`]) and durations ([`SimDuration`]),
//!   nanosecond resolution.
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with FIFO
//!   tie-breaking for simultaneous events.
//! * [`rng`] — a seedable, splittable pseudo-random number generator
//!   ([`Rng`]) with the distributions the workloads need (uniform,
//!   exponential, normal, lognormal, Pareto).  A local implementation is used
//!   instead of an external crate so that every experiment is reproducible
//!   bit-for-bit from a single `u64` seed.
//! * [`server`] — queueing building blocks: single FCFS servers and
//!   multi-processor servers (used to model the Alpha server that hosted the
//!   ActYP prototype, and the scheduling processes inside resource pools).
//! * [`net`] — latency models for LAN and WAN configurations.
//! * [`stats`] — online statistics, histograms and percentile estimation used
//!   by the benchmark harness to report the figure series.

pub mod event;
pub mod net;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use net::{LatencyModel, LinkProfile, NetworkModel};
pub use rng::Rng;
pub use server::{FcfsServer, MultiServer};
pub use stats::{Histogram, OnlineStats, SampleSet};
pub use time::{SimDuration, SimTime};
