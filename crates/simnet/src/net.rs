//! Network latency models for the LAN and WAN experiment configurations.
//!
//! The paper runs the same experiments in two configurations: everything in a
//! local-area network at Purdue, and a wide-area configuration with clients
//! at Purdue and the ActYP service at UPC in Barcelona.  The only difference
//! the pipeline sees is the message latency between stages, so the network
//! model is a per-hop latency sampler plus an optional per-byte transmission
//! cost.

use crate::rng::Rng;
use crate::time::SimDuration;

/// A class of link between two pipeline components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkProfile {
    /// Both endpoints on the same host (pipe / loopback).
    Local,
    /// Campus local-area network.
    Lan,
    /// Wide-area (trans-Atlantic in the paper's experiment).
    Wan,
}

/// Something that can sample a one-way message latency.
pub trait LatencyModel {
    /// Samples the one-way latency for a message of `bytes` bytes.
    fn sample(&self, rng: &mut Rng, bytes: usize) -> SimDuration;

    /// The mean one-way latency for a small message, used for reporting.
    fn nominal(&self) -> SimDuration;
}

/// A latency model with a fixed base latency, uniform jitter, and a
/// per-megabyte transmission cost.
#[derive(Debug, Clone)]
pub struct JitteredLatency {
    /// Base one-way latency.
    pub base: SimDuration,
    /// Maximum additional uniform jitter.
    pub jitter: SimDuration,
    /// Seconds per megabyte of payload (1 / bandwidth).
    pub secs_per_mb: f64,
}

impl JitteredLatency {
    /// A new model from base latency, jitter bound and bandwidth in MB/s.
    pub fn new(base: SimDuration, jitter: SimDuration, bandwidth_mb_s: f64) -> Self {
        JitteredLatency {
            base,
            jitter,
            secs_per_mb: if bandwidth_mb_s > 0.0 {
                1.0 / bandwidth_mb_s
            } else {
                0.0
            },
        }
    }
}

impl LatencyModel for JitteredLatency {
    fn sample(&self, rng: &mut Rng, bytes: usize) -> SimDuration {
        let jitter = SimDuration::from_nanos(rng.below(self.jitter.as_nanos().max(1)));
        let tx = SimDuration::from_secs_f64(bytes as f64 / 1e6 * self.secs_per_mb);
        self.base + jitter + tx
    }

    fn nominal(&self) -> SimDuration {
        self.base + self.jitter / 2
    }
}

/// The network model used by the pipeline simulation: a latency profile per
/// link class.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    local: JitteredLatency,
    lan: JitteredLatency,
    wan: JitteredLatency,
}

impl NetworkModel {
    /// A model in which every hop is a LAN hop (the paper's Figure 4/6/7/8
    /// configuration): ~0.2 ms base latency on a 100 Mbit/s campus network.
    pub fn lan() -> Self {
        NetworkModel {
            local: JitteredLatency::new(
                SimDuration::from_micros(15),
                SimDuration::from_micros(10),
                800.0,
            ),
            lan: JitteredLatency::new(
                SimDuration::from_micros(200),
                SimDuration::from_micros(100),
                12.0,
            ),
            wan: JitteredLatency::new(
                SimDuration::from_micros(200),
                SimDuration::from_micros(100),
                12.0,
            ),
        }
    }

    /// A model for the paper's Figure 5 configuration: the client-to-service
    /// hop crosses a wide-area link (Purdue to Barcelona, ~60 ms one way),
    /// while hops inside the service remain on the LAN.
    pub fn wan() -> Self {
        NetworkModel {
            wan: JitteredLatency::new(
                SimDuration::from_millis(60),
                SimDuration::from_millis(8),
                1.5,
            ),
            ..Self::lan()
        }
    }

    /// Builds a model from explicit profiles (used by tests and ablations).
    pub fn custom(local: JitteredLatency, lan: JitteredLatency, wan: JitteredLatency) -> Self {
        NetworkModel { local, lan, wan }
    }

    /// Samples a one-way latency on the given link class.
    pub fn latency(&self, profile: LinkProfile, rng: &mut Rng, bytes: usize) -> SimDuration {
        match profile {
            LinkProfile::Local => self.local.sample(rng, bytes),
            LinkProfile::Lan => self.lan.sample(rng, bytes),
            LinkProfile::Wan => self.wan.sample(rng, bytes),
        }
    }

    /// Nominal (mean) latency for a small message on the given link class.
    pub fn nominal(&self, profile: LinkProfile) -> SimDuration {
        match profile {
            LinkProfile::Local => self.local.nominal(),
            LinkProfile::Lan => self.lan.nominal(),
            LinkProfile::Wan => self.wan.nominal(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_latency_dominates_lan() {
        let mut rng = Rng::new(1);
        let model = NetworkModel::wan();
        let wan = model.latency(LinkProfile::Wan, &mut rng, 512);
        let lan = model.latency(LinkProfile::Lan, &mut rng, 512);
        assert!(wan > lan * 10u64, "wan {wan} should dwarf lan {lan}");
    }

    #[test]
    fn lan_model_treats_wan_links_as_lan() {
        let model = NetworkModel::lan();
        assert_eq!(
            model.nominal(LinkProfile::Wan),
            model.nominal(LinkProfile::Lan)
        );
    }

    #[test]
    fn latency_includes_transmission_time() {
        let mut rng = Rng::new(2);
        let profile = JitteredLatency::new(SimDuration::from_micros(100), SimDuration::ZERO, 10.0);
        let small = profile.sample(&mut rng, 0);
        let big = profile.sample(&mut rng, 10_000_000); // 10 MB at 10 MB/s = 1 s
        assert!(big.as_secs_f64() - small.as_secs_f64() > 0.9);
    }

    #[test]
    fn jitter_stays_within_bound() {
        let mut rng = Rng::new(3);
        let base = SimDuration::from_micros(200);
        let jitter = SimDuration::from_micros(100);
        let profile = JitteredLatency::new(base, jitter, 0.0);
        for _ in 0..1000 {
            let l = profile.sample(&mut rng, 0);
            assert!(l >= base && l < base + jitter);
        }
    }

    #[test]
    fn zero_bandwidth_means_no_transmission_cost() {
        let mut rng = Rng::new(4);
        let profile = JitteredLatency::new(SimDuration::from_micros(50), SimDuration::ZERO, 0.0);
        assert_eq!(
            profile.sample(&mut rng, 1_000_000),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn nominal_is_base_plus_half_jitter() {
        let profile = JitteredLatency::new(
            SimDuration::from_micros(100),
            SimDuration::from_micros(50),
            1.0,
        );
        assert_eq!(profile.nominal(), SimDuration::from_micros(125));
    }

    #[test]
    fn local_links_are_cheapest() {
        let model = NetworkModel::lan();
        assert!(model.nominal(LinkProfile::Local) < model.nominal(LinkProfile::Lan));
    }
}
