//! Deterministic event queue.
//!
//! The kernel deliberately does not prescribe an actor framework: the
//! pipeline simulation in `actyp-pipeline` defines its own event enum and
//! drives the loop.  The queue guarantees that events are delivered in
//! non-decreasing time order and that events scheduled for the same instant
//! are delivered in the order they were scheduled (FIFO tie-break), which is
//! what makes simulation runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event held by the queue, tagged with its delivery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub at: SimTime,
    /// Monotone sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Internal heap entry; ordered so that the `BinaryHeap` (a max-heap) pops the
/// earliest time / lowest sequence number first.
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that earliest (time, seq) is the heap maximum.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event queue with a virtual clock.
///
/// The clock advances to the delivery time of each popped event; scheduling
/// an event in the past (which would break causality) is clamped to the
/// current clock value.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: SimTime,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (the delivery time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules an event at an absolute time.  Times earlier than the
    /// current clock are clamped to "now" to preserve causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Schedules an event after a delay relative to the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.delivered += 1;
        Some(ScheduledEvent {
            at: entry.at,
            seq: entry.seq,
            event: entry.event,
        })
    }

    /// Delivery time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        q.schedule_at(SimTime::from_nanos(200), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(100));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(200));
        assert!(q.pop().is_none());
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), "first");
        q.pop();
        q.schedule_at(SimTime::from_nanos(10), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_nanos(100));
        assert_eq!(q.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(50), ());
        q.pop();
        q.schedule_in(SimDuration::from_nanos(25), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(75)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(SimDuration::from_nanos(1), 1);
        q.schedule_in(SimDuration::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
