//! Statistics collectors used by the experiments.
//!
//! Three collectors cover everything the figures need: [`OnlineStats`]
//! (count/mean/variance/min/max without storing samples, Welford's method),
//! [`SampleSet`] (stores samples for exact percentiles — the figure series
//! report means and 95th percentiles of response time), and [`Histogram`]
//! (fixed-width bins, used for the Figure 9 CPU-time distribution).

use crate::time::SimDuration;

/// Streaming mean / variance / extrema (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty collector.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds a duration observation, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (zero with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Stores raw samples for exact percentile queries.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds a duration sample, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation.
    /// Returns zero when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// Median, a convenience wrapper around [`SampleSet::quantile`].
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// The raw samples (unsorted insertion order is not preserved once a
    /// quantile has been computed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A fixed-width histogram over `[0, bin_width * bins)` with an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        Histogram {
            bin_width: if bin_width > 0.0 { bin_width } else { 1.0 },
            counts: vec![0; bins.max(1)],
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.  Negative values land in the first bin.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let idx = if x <= 0.0 {
            0
        } else {
            (x / self.bin_width) as usize
        };
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of bins (excluding overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Count of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over `(bin_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.bin_width, c))
    }

    /// Index of the fullest bin, or `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 4.571428...
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merging_equals_recording_everything_in_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        a.record(5.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(1.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    fn quantiles_on_known_set() {
        let mut s = SampleSet::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_on_empty_is_zero() {
        let mut s = SampleSet::new();
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn quantile_interpolates() {
        let mut s = SampleSet::new();
        s.record(0.0);
        s.record(10.0);
        assert!((s.quantile(0.5) - 5.0).abs() < 1e-12);
        assert!((s.quantile(0.9) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(1.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, 10.0, 50.0, -3.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.count(0), 2); // 0.5 and the clamped -3.0
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.overflow(), 2); // 10.0 and 50.0
                                     // Bins 0 and 1 tie for the mode; either is acceptable.
        let mode = h.mode_bin().unwrap();
        assert_eq!(h.count(mode), 2);
    }

    #[test]
    fn histogram_iter_reports_bin_edges() {
        let mut h = Histogram::new(2.0, 3);
        h.record(3.0);
        let bins: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], (0.0, 0));
        assert_eq!(bins[1], (2.0, 1));
        assert_eq!(bins[2], (4.0, 0));
    }

    #[test]
    fn histogram_guards_degenerate_parameters() {
        let mut h = Histogram::new(0.0, 0);
        h.record(5.0);
        assert_eq!(h.bins(), 1);
        assert_eq!(h.bin_width(), 1.0);
        assert_eq!(h.total(), 1);
        assert!(h.mode_bin().is_none() || h.overflow() == 1 || h.count(0) == 1);
    }
}
