//! Virtual time for the discrete-event simulation.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is
//! exact and independent of floating-point rounding.  Durations are a
//! separate type to keep "point in time" and "length of time" from being
//! mixed up in the pipeline models.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, measured in nanoseconds from the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a floating point value (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.  Saturates at zero if `earlier`
    /// is in the future (callers treat that as "no time elapsed").
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.  Negative or non-finite
    /// inputs are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Builds a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Builds a duration from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in milliseconds as a floating point value.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn negative_or_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.since(a).as_nanos(), 20);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn subtraction_of_times_gives_duration() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1_500);
        assert_eq!(b - a, SimDuration::from_nanos(1_000));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn scaling_durations() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3u64).as_nanos(), 30_000_000);
        assert_eq!((d / 2).as_nanos(), 5_000_000);
        assert_eq!((d * 0.5).as_nanos(), 5_000_000);
    }

    #[test]
    fn max_and_sentinels() {
        assert_eq!(SimTime::ZERO.max(SimTime::from_nanos(5)).as_nanos(), 5);
        assert!(SimTime::MAX > SimTime::from_nanos(u64::MAX - 1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
