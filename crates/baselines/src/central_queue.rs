//! A centralized, multi-queue cluster scheduler (PBS / SGE style).
//!
//! Jobs are submitted to a queue chosen by their expected run time (the
//! "one queue for short jobs; another for large ones" arrangement the paper
//! describes), and a single scheduler thread dispatches from the queues in
//! priority order.  Every dispatch scans the full machine table — there is
//! no aggregation — which is the structural difference from the ActYP
//! pipeline that the comparison benches expose.

use std::collections::VecDeque;

use actyp_grid::{MachineId, SharedDatabase};
use actyp_query::{admits_user, matches_machine, BasicQuery};

/// The class (queue) a job is routed to, by expected CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueClass {
    /// Interactive / very short jobs (< 60 s).
    Short,
    /// Medium jobs (< 1 h).
    Medium,
    /// Long batch jobs.
    Long,
}

impl QueueClass {
    /// Classifies a job by its expected CPU seconds (unknown ⇒ `Medium`).
    pub fn classify(expected_cpu_seconds: Option<f64>) -> QueueClass {
        match expected_cpu_seconds {
            Some(s) if s < 60.0 => QueueClass::Short,
            Some(s) if s < 3_600.0 => QueueClass::Medium,
            Some(_) => QueueClass::Long,
            None => QueueClass::Medium,
        }
    }
}

/// The result of a submit-and-dispatch cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was dispatched to a machine; carries the machine and how many
    /// database entries the scheduler examined.
    Dispatched {
        /// Chosen machine.
        machine: MachineId,
        /// Machine-table entries scanned.
        examined: usize,
    },
    /// No machine currently satisfies the job; it stays queued.
    Queued(QueueClass),
}

/// A centralized multi-queue scheduler.
pub struct CentralScheduler {
    db: SharedDatabase,
    short: VecDeque<BasicQuery>,
    medium: VecDeque<BasicQuery>,
    long: VecDeque<BasicQuery>,
    dispatched: u64,
    scanned_total: u64,
}

impl CentralScheduler {
    /// Creates a scheduler over the shared machine database.
    pub fn new(db: SharedDatabase) -> Self {
        CentralScheduler {
            db,
            short: VecDeque::new(),
            medium: VecDeque::new(),
            long: VecDeque::new(),
            dispatched: 0,
            scanned_total: 0,
        }
    }

    /// Jobs currently waiting across all queues.
    pub fn queued(&self) -> usize {
        self.short.len() + self.medium.len() + self.long.len()
    }

    /// Jobs dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Total machine-table entries scanned over the scheduler's lifetime —
    /// the quantity that makes the centralized design a bottleneck.
    pub fn scanned_total(&self) -> u64 {
        self.scanned_total
    }

    fn queue_mut(&mut self, class: QueueClass) -> &mut VecDeque<BasicQuery> {
        match class {
            QueueClass::Short => &mut self.short,
            QueueClass::Medium => &mut self.medium,
            QueueClass::Long => &mut self.long,
        }
    }

    fn try_dispatch(&mut self, query: &BasicQuery) -> Option<(MachineId, usize)> {
        let guard = self.db.read();
        let mut examined = 0;
        let mut best: Option<(MachineId, f64)> = None;
        for machine in guard.iter() {
            examined += 1;
            if !machine.accepting_work()
                || !matches_machine(query, machine).is_match()
                || !admits_user(query, machine, 12)
            {
                continue;
            }
            let load = machine.dynamic.current_load;
            if best.map(|(_, l)| load < l).unwrap_or(true) {
                best = Some((machine.id, load));
            }
        }
        drop(guard);
        self.scanned_total += examined as u64;
        best.map(|(id, _)| (id, examined))
    }

    /// Submits a job and immediately attempts to dispatch it (the paper's
    /// baseline schedulers dispatch on submission when a slot is free).  On
    /// dispatch the chosen machine's job count is bumped, exactly as the
    /// pipeline does, so the two architectures are load-comparable.
    pub fn submit(&mut self, query: BasicQuery) -> SubmitOutcome {
        match self.try_submit(&query) {
            Some((machine, examined)) => SubmitOutcome::Dispatched { machine, examined },
            None => {
                let class = QueueClass::classify(query.expected_cpu_use());
                self.queue_mut(class).push_back(query);
                SubmitOutcome::Queued(class)
            }
        }
    }

    /// Dispatches a job if a machine fits right now; unlike
    /// [`CentralScheduler::submit`], a job that does not fit is *not*
    /// queued — callers that report failures to their client (the unified
    /// `ResourceManager` surface) use this so rejected jobs cannot pile up
    /// inside the scheduler.
    pub fn try_submit(&mut self, query: &BasicQuery) -> Option<(MachineId, usize)> {
        let (machine, examined) = self.try_dispatch(query)?;
        let mut guard = self.db.write();
        if let Some(m) = guard.get_mut(machine) {
            m.dynamic.active_jobs += 1;
            m.dynamic.current_load += 1.0 / m.num_cpus.max(1) as f64;
        }
        drop(guard);
        self.dispatched += 1;
        Some((machine, examined))
    }

    /// Marks a previously dispatched job as finished on `machine`.
    pub fn finish(&mut self, machine: MachineId) {
        let mut guard = self.db.write();
        if let Some(m) = guard.get_mut(machine) {
            m.dynamic.active_jobs = m.dynamic.active_jobs.saturating_sub(1);
            m.dynamic.current_load =
                (m.dynamic.current_load - 1.0 / m.num_cpus.max(1) as f64).max(0.0);
        }
    }

    /// One scheduling cycle over the queues (short first, then medium, then
    /// long): dispatches every job that now fits.  Returns the number of
    /// jobs dispatched.
    pub fn schedule_cycle(&mut self) -> usize {
        let mut dispatched = 0;
        for class in [QueueClass::Short, QueueClass::Medium, QueueClass::Long] {
            let mut remaining = VecDeque::new();
            while let Some(query) = self.queue_mut(class).pop_front() {
                match self.try_submit(&query) {
                    Some(_) => dispatched += 1,
                    None => remaining.push_back(query),
                }
            }
            *self.queue_mut(class) = remaining;
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, SyntheticFleet};
    use actyp_query::{Constraint, Query, QueryKey};

    fn db(n: usize) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::homogeneous(n, "sun", 256), 17)
            .generate()
            .into_shared()
    }

    fn job(cpu: f64) -> BasicQuery {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::appl("expectedcpuuse"), Constraint::eq(cpu))
            .decompose(1)
            .remove(0)
    }

    #[test]
    fn classification_by_expected_runtime() {
        assert_eq!(QueueClass::classify(Some(5.0)), QueueClass::Short);
        assert_eq!(QueueClass::classify(Some(600.0)), QueueClass::Medium);
        assert_eq!(QueueClass::classify(Some(86_400.0)), QueueClass::Long);
        assert_eq!(QueueClass::classify(None), QueueClass::Medium);
    }

    #[test]
    fn submit_dispatches_and_scans_the_whole_table() {
        let mut scheduler = CentralScheduler::new(db(50));
        match scheduler.submit(job(10.0)) {
            SubmitOutcome::Dispatched { examined, .. } => assert_eq!(examined, 50),
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(scheduler.dispatched(), 1);
        assert_eq!(scheduler.scanned_total(), 50);
    }

    #[test]
    fn unsatisfiable_jobs_queue_by_class() {
        let database = db(10);
        // Saturate every machine.
        {
            let mut guard = database.write();
            let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
            for id in ids {
                let m = guard.get_mut(id).unwrap();
                m.dynamic.current_load = m.max_allowed_load + 1.0;
            }
        }
        let mut scheduler = CentralScheduler::new(database.clone());
        assert_eq!(
            scheduler.submit(job(5.0)),
            SubmitOutcome::Queued(QueueClass::Short)
        );
        assert_eq!(
            scheduler.submit(job(100_000.0)),
            SubmitOutcome::Queued(QueueClass::Long)
        );
        assert_eq!(scheduler.queued(), 2);

        // Free the machines; the next cycle drains the queues.
        {
            let mut guard = database.write();
            let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
            for id in ids {
                guard.get_mut(id).unwrap().dynamic.current_load = 0.0;
            }
        }
        assert_eq!(scheduler.schedule_cycle(), 2);
        assert_eq!(scheduler.queued(), 0);
    }

    #[test]
    fn try_submit_dispatches_without_queuing_failures() {
        let database = db(5);
        let mut scheduler = CentralScheduler::new(database.clone());
        assert!(scheduler.try_submit(&job(10.0)).is_some());
        assert_eq!(scheduler.dispatched(), 1);

        // Saturate every machine: the job is rejected, not parked.
        {
            let mut guard = database.write();
            let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
            for id in ids {
                let m = guard.get_mut(id).unwrap();
                m.dynamic.current_load = m.max_allowed_load + 1.0;
            }
        }
        assert!(scheduler.try_submit(&job(10.0)).is_none());
        assert_eq!(scheduler.queued(), 0, "try_submit never queues");
    }

    #[test]
    fn finish_restores_machine_load() {
        let database = db(5);
        let mut scheduler = CentralScheduler::new(database.clone());
        let machine = match scheduler.submit(job(10.0)) {
            SubmitOutcome::Dispatched { machine, .. } => machine,
            other => panic!("expected dispatch, got {other:?}"),
        };
        assert_eq!(database.read().get(machine).unwrap().dynamic.active_jobs, 1);
        scheduler.finish(machine);
        assert_eq!(database.read().get(machine).unwrap().dynamic.active_jobs, 0);
    }

    #[test]
    fn scan_cost_grows_linearly_with_fleet_size() {
        let mut small = CentralScheduler::new(db(100));
        let mut large = CentralScheduler::new(db(1000));
        small.submit(job(10.0));
        large.submit(job(10.0));
        assert_eq!(small.scanned_total() * 10, large.scanned_total());
    }
}
