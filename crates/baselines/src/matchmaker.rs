//! A centralized Condor-style matchmaker.
//!
//! Condor's matchmaking evaluates every job advertisement against every
//! machine advertisement in a central negotiator and picks the
//! highest-ranked compatible pair.  Here machine "ads" are the records of
//! the shared resource database and job "ads" are basic queries (optionally
//! translated from ClassAd requirement expressions by
//! `actyp_query::classad`), so the baseline exercises exactly the same
//! matching semantics as the pipeline while concentrating all the work in
//! one component.

use actyp_grid::{MachineId, SharedDatabase};
use actyp_query::{admits_user, matches_machine, BasicQuery};

/// The record of one matchmaking decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcomeRecord {
    /// The matched machine, if any.
    pub machine: Option<MachineId>,
    /// Machine advertisements evaluated.
    pub evaluated: usize,
    /// Rank of the chosen machine (higher is better), if matched.
    pub rank: Option<f64>,
}

/// The centralized matchmaker.
pub struct Matchmaker {
    db: SharedDatabase,
    cycles: u64,
    matched: u64,
    evaluated_total: u64,
}

impl Matchmaker {
    /// Creates a matchmaker over the shared database.
    pub fn new(db: SharedDatabase) -> Self {
        Matchmaker {
            db,
            cycles: 0,
            matched: 0,
            evaluated_total: 0,
        }
    }

    /// Number of negotiation cycles run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of jobs matched.
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Total machine advertisements evaluated.
    pub fn evaluated_total(&self) -> u64 {
        self.evaluated_total
    }

    /// Rank function: Condor ranks by a job-supplied expression; the default
    /// here prefers fast, idle machines — equivalent to the pipeline's
    /// least-loaded objective modulated by machine speed.
    fn rank(speed: f64, load: f64) -> f64 {
        speed / (1.0 + load)
    }

    /// Matches one job against every machine advertisement and claims the
    /// best-ranked compatible machine.
    pub fn negotiate(&mut self, job: &BasicQuery) -> MatchOutcomeRecord {
        self.cycles += 1;
        let mut evaluated = 0;
        let mut best: Option<(MachineId, f64)> = None;
        {
            let guard = self.db.read();
            for machine in guard.iter() {
                evaluated += 1;
                if !machine.accepting_work()
                    || !matches_machine(job, machine).is_match()
                    || !admits_user(job, machine, 12)
                {
                    continue;
                }
                let rank = Self::rank(machine.effective_speed, machine.dynamic.current_load);
                if best.map(|(_, r)| rank > r).unwrap_or(true) {
                    best = Some((machine.id, rank));
                }
            }
        }
        self.evaluated_total += evaluated as u64;

        match best {
            Some((machine, rank)) => {
                let mut guard = self.db.write();
                if let Some(m) = guard.get_mut(machine) {
                    m.dynamic.active_jobs += 1;
                    m.dynamic.current_load += 1.0 / m.num_cpus.max(1) as f64;
                }
                self.matched += 1;
                MatchOutcomeRecord {
                    machine: Some(machine),
                    evaluated,
                    rank: Some(rank),
                }
            }
            None => MatchOutcomeRecord {
                machine: None,
                evaluated,
                rank: None,
            },
        }
    }

    /// Negotiates a batch of jobs (one negotiation cycle in Condor terms)
    /// and returns the per-job outcomes.
    pub fn negotiate_batch(&mut self, jobs: &[BasicQuery]) -> Vec<MatchOutcomeRecord> {
        jobs.iter().map(|job| self.negotiate(job)).collect()
    }

    /// Releases a claim made by [`Matchmaker::negotiate`].
    pub fn release(&mut self, machine: MachineId) {
        let mut guard = self.db.write();
        if let Some(m) = guard.get_mut(machine) {
            m.dynamic.active_jobs = m.dynamic.active_jobs.saturating_sub(1);
            m.dynamic.current_load =
                (m.dynamic.current_load - 1.0 / m.num_cpus.max(1) as f64).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, SyntheticFleet};
    use actyp_query::{classad::translate_requirements, Constraint, Query, QueryKey};

    fn db(n: usize) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), 23)
            .generate()
            .into_shared()
    }

    fn sun_job() -> BasicQuery {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0)
    }

    #[test]
    fn negotiation_matches_and_claims_a_machine() {
        let database = db(100);
        let mut mm = Matchmaker::new(database.clone());
        let outcome = mm.negotiate(&sun_job());
        let machine = outcome.machine.expect("a sun machine exists");
        assert_eq!(outcome.evaluated, 100);
        assert!(outcome.rank.unwrap() > 0.0);
        assert_eq!(database.read().get(machine).unwrap().dynamic.active_jobs, 1);
        assert_eq!(mm.matched(), 1);
        mm.release(machine);
        assert_eq!(database.read().get(machine).unwrap().dynamic.active_jobs, 0);
    }

    #[test]
    fn impossible_jobs_do_not_match() {
        let mut mm = Matchmaker::new(db(50));
        let job = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("cray"))
            .decompose(1)
            .remove(0);
        let outcome = mm.negotiate(&job);
        assert!(outcome.machine.is_none());
        assert_eq!(outcome.evaluated, 50);
        assert_eq!(mm.matched(), 0);
    }

    #[test]
    fn rank_prefers_fast_idle_machines() {
        assert!(Matchmaker::rank(500.0, 0.0) > Matchmaker::rank(100.0, 0.0));
        assert!(Matchmaker::rank(300.0, 0.0) > Matchmaker::rank(300.0, 4.0));
    }

    #[test]
    fn classad_expressions_drive_the_matchmaker() {
        let mut mm = Matchmaker::new(db(200));
        let job =
            translate_requirements("Arch == \"SUN\" && Memory >= 128", Some("c"), Some("ece"))
                .unwrap()
                .decompose(1)
                .remove(0);
        let outcome = mm.negotiate(&job);
        assert!(outcome.machine.is_some());
    }

    #[test]
    fn batch_negotiation_spreads_load() {
        let database = db(100);
        let mut mm = Matchmaker::new(database.clone());
        let jobs: Vec<BasicQuery> = (0..20).map(|_| sun_job()).collect();
        let outcomes = mm.negotiate_batch(&jobs);
        assert_eq!(outcomes.len(), 20);
        let machines: std::collections::HashSet<_> =
            outcomes.iter().filter_map(|o| o.machine).collect();
        assert!(
            machines.len() > 5,
            "rank must spread jobs, got {}",
            machines.len()
        );
        assert_eq!(mm.cycles(), 20);
        assert_eq!(mm.evaluated_total(), 2_000);
    }
}
