//! # actyp-baselines — architectural comparators
//!
//! Section 8 of the paper positions ActYP against two families of resource
//! managers: cluster management systems with *centralized schedulers and
//! multiple submit queues* (PBS, DQS, Sun Grid Engine) and *centralized
//! matchmakers* (Condor's ClassAd matchmaking).  The comparison in the paper
//! is qualitative; to let the benchmark harness show the same architectural
//! contrasts quantitatively, this crate implements both baselines over the
//! same resource database and query language:
//!
//! * [`central_queue`] — a centralized scheduler with per-class submit
//!   queues: every query goes through one scheduler whose dispatch cost
//!   scans the whole machine table.
//! * [`matchmaker`] — a centralized matchmaker that evaluates every query
//!   against every machine advertisement and picks the best rank.
//!
//! Both are single points of service: they cannot be replicated the way
//! pipeline stages can, which is exactly the contrast the benches
//! (`baseline_comparison`) illustrate.

pub mod central_queue;
pub mod matchmaker;

pub use central_queue::{CentralScheduler, QueueClass, SubmitOutcome};
pub use matchmaker::{MatchOutcomeRecord, Matchmaker};
