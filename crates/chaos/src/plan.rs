//! The submission plan: a scenario's workload mix expanded into a
//! concrete, fully ordered list of submissions.
//!
//! Both executors run the *same* plan — the simulator replays it on
//! virtual time, the live executor on scaled wall-clock time — so a
//! scenario is trace-driven in the strict sense: which client submits
//! what, where, and when is fixed by `(scenario, seed)` before either
//! executor starts.  The arrival times come from the workload crate's
//! generators (open Poisson populations, hot-spot windows), driven by RNG
//! streams derived from the scenario seed.

use actyp_simnet::Rng;
use actyp_workload::ClientPopulation;

use crate::scenario::{Scenario, WorkloadSpec};

/// One planned submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedSubmission {
    /// Submission time, ms from scenario start.
    pub at_ms: u64,
    /// Entry domain (the daemon the client talks to).
    pub origin: usize,
    /// Architecture the query asks for.
    pub arch: String,
    /// How long the client holds its allocation before releasing, ms.
    pub hold_ms: u64,
    /// Index of the workload component this submission belongs to.
    pub workload: usize,
    /// Settle deadline, ms (deadline-constrained sweeps only).
    pub deadline_ms: Option<u64>,
}

/// Expands the scenario's workload mix into the ordered submission list.
/// Pure function of the scenario (including its seed): every call returns
/// the identical plan.
pub fn submission_plan(scenario: &Scenario) -> Vec<PlannedSubmission> {
    let mut all: Vec<PlannedSubmission> = Vec::new();
    for (widx, spec) in scenario.workloads.iter().enumerate() {
        // One derived stream per workload component, so editing one
        // component never reshuffles another's arrivals.
        let mut rng = Rng::new(scenario.seed ^ 0x9e37_79b9 ^ ((widx as u64 + 1) << 32));
        match spec {
            WorkloadSpec::Background {
                start_ms,
                clients,
                requests_per_client,
                rate_per_s,
                arch,
                hold_ms,
            } => {
                let population =
                    ClientPopulation::open(*clients, *requests_per_client, *rate_per_s);
                for arrival in population.arrival_times(&mut rng) {
                    let at_ms = start_ms + arrival.as_nanos() / 1_000_000;
                    let arch = match arch {
                        Some(a) => a.clone(),
                        None => scenario.archs[rng.index(scenario.archs.len())].clone(),
                    };
                    all.push(PlannedSubmission {
                        at_ms,
                        origin: rng.index(scenario.domains),
                        arch,
                        hold_ms: hold(&mut rng, *hold_ms),
                        workload: widx,
                        deadline_ms: None,
                    });
                }
            }
            WorkloadSpec::Hotspot {
                at_ms,
                clients,
                window_ms,
                arch,
                hold_ms,
            } => {
                for _ in 0..*clients {
                    all.push(PlannedSubmission {
                        at_ms: at_ms + rng.below((*window_ms).max(1)),
                        origin: rng.index(scenario.domains),
                        arch: arch.clone(),
                        hold_ms: hold(&mut rng, *hold_ms),
                        workload: widx,
                        deadline_ms: None,
                    });
                }
            }
            WorkloadSpec::Burst {
                at_ms,
                jobs,
                deadline_ms,
                budget: _,
                arch,
                hold_ms,
            } => {
                for job in 0..*jobs {
                    // Sweeps submit in quick succession, not all at one
                    // instant: a short deterministic stagger per job.
                    all.push(PlannedSubmission {
                        at_ms: at_ms + job as u64 * 25 + rng.below(25),
                        origin: rng.index(scenario.domains),
                        arch: arch.clone(),
                        hold_ms: hold(&mut rng, *hold_ms),
                        workload: widx,
                        deadline_ms: Some(*deadline_ms),
                    });
                }
            }
        }
    }
    // Submissions past the scenario horizon are dropped (the run would
    // end before they settle); the rest are replayed in time order, ties
    // broken by workload-component order so the sort is total.
    all.retain(|s| s.at_ms < scenario.duration_ms);
    all.sort_by(|a, b| a.at_ms.cmp(&b.at_ms).then(a.workload.cmp(&b.workload)));
    all
}

/// Exponential hold times around the spec's mean, floored at 1ms.
fn hold(rng: &mut Rng, mean_ms: u64) -> u64 {
    (rng.exponential(mean_ms.max(1) as f64) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn the_plan_is_a_pure_function_of_the_scenario() {
        let s = scenario::wan_partition_stampede();
        assert_eq!(submission_plan(&s), submission_plan(&s));
    }

    #[test]
    fn changing_the_seed_changes_the_plan() {
        let mut s = scenario::trio_flap();
        let a = submission_plan(&s);
        s.seed ^= 1;
        assert_ne!(a, submission_plan(&s));
    }

    #[test]
    fn the_plan_is_sorted_bounded_and_targets_valid_domains() {
        let s = scenario::wan_partition_stampede();
        let plan = submission_plan(&s);
        assert!(!plan.is_empty());
        assert!(plan.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(plan.iter().all(|p| p.at_ms < s.duration_ms));
        assert!(plan.iter().all(|p| p.origin < s.domains));
        assert!(plan.iter().all(|p| s.archs.contains(&p.arch)));
        // Burst jobs carry their deadline, the rest carry none.
        for p in &plan {
            let is_burst = matches!(s.workloads[p.workload], WorkloadSpec::Burst { .. });
            assert_eq!(p.deadline_ms.is_some(), is_burst);
        }
    }
}
