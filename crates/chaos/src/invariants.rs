//! The federation invariants every chaos run checks continuously.
//!
//! These are the promises the routing and gossip planes make regardless of
//! what the WAN does to them:
//!
//! - **TTL strictly decreasing** — every delegation hop consumes at least
//!   one hop of time-to-live; no reply can re-arm a chain.
//! - **No revisits** — a domain appears in a chain's visited list at most
//!   once.
//! - **Bounded chains** — a chain never takes more hops than the TTL it
//!   started with.
//! - **Route cache is advisory** — it may reorder the candidate set, never
//!   add to it, drop from it, or bypass the TTL/visited discipline.
//! - **No lease stranded** — every granted allocation ends released by its
//!   client or reclaimed by session teardown.
//! - **No ticket lost** — every submission settles (success, failure, or
//!   teardown), none hangs forever.
//! - **No resurrection** — a pool retired at its origin never reappears as
//!   live in any domain's gossip view once the fleet has converged.
//!
//! The [`Checker`] accumulates violations as strings; an empty list at the
//! end of a run is the pass verdict.  The simulator feeds it continuously;
//! the live executor applies the same vocabulary to a real fleet.

use std::collections::BTreeSet;

use actyp_pipeline::RoutingState;

/// One observed delegation hop: `from` handed the query to `to`, with the
/// routing TTL sampled before the hop was sent and after the downstream
/// chain's state was merged back.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Delegating domain.
    pub from: String,
    /// Receiving domain.
    pub to: String,
    /// TTL before the hop.
    pub ttl_before: u32,
    /// TTL after the downstream chain returned.
    pub ttl_after: u32,
}

/// Lifecycle of one granted allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Granted, not yet returned.
    Held,
    /// Returned by the holding client.
    Released,
    /// Reclaimed by session teardown (client vanished or a daemon died).
    Reclaimed,
}

/// One granted allocation, tracked from grant to its terminal state.
#[derive(Debug, Clone)]
pub struct Lease {
    /// The session access key (unique per grant).
    pub key: String,
    /// Domain that granted the allocation.
    pub grantor: String,
    /// Domain whose client holds it.
    pub origin: String,
    /// Pool it was granted from.
    pub pool: String,
    /// Where it is in its lifecycle.
    pub state: LeaseState,
}

/// The ledger of every lease a run granted.  At the end of a run, a lease
/// still [`LeaseState::Held`] is stranded — the paper's architecture
/// reclaims *everything* through session teardown, so "stranded" always
/// means a harness-visible bug.
#[derive(Debug, Default)]
pub struct LeaseLedger {
    leases: Vec<Lease>,
}

impl LeaseLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a grant, returning the lease's ledger index.
    pub fn grant(&mut self, key: String, grantor: String, origin: String, pool: String) -> usize {
        self.leases.push(Lease {
            key,
            grantor,
            origin,
            pool,
            state: LeaseState::Held,
        });
        self.leases.len() - 1
    }

    /// Marks a lease released.  Releasing a reclaimed lease is fine (the
    /// client raced teardown); double-releasing a released one is not.
    pub fn release(&mut self, index: usize, checker: &mut Checker) {
        match self.leases[index].state {
            LeaseState::Held => self.leases[index].state = LeaseState::Released,
            LeaseState::Reclaimed => {}
            LeaseState::Released => {
                checker.violation(format!("lease {} double-released", self.leases[index].key))
            }
        }
    }

    /// Marks every held lease matching `pred` reclaimed, returning how
    /// many were.
    pub fn reclaim_where(&mut self, mut pred: impl FnMut(&Lease) -> bool) -> usize {
        let mut n = 0;
        for lease in &mut self.leases {
            if lease.state == LeaseState::Held && pred(lease) {
                lease.state = LeaseState::Reclaimed;
                n += 1;
            }
        }
        n
    }

    /// The tracked leases.
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// How many leases are in the given state.
    pub fn count(&self, state: LeaseState) -> usize {
        self.leases.iter().filter(|l| l.state == state).count()
    }

    /// End-of-run check: no lease stranded.
    pub fn final_check(&self, checker: &mut Checker) {
        for lease in &self.leases {
            if lease.state == LeaseState::Held {
                checker.violation(format!(
                    "lease {} stranded: granted by {} from pool {} to a client of {}, \
                     never released or reclaimed",
                    lease.key, lease.grantor, lease.pool, lease.origin
                ));
            }
        }
    }
}

/// Accumulates invariant violations over one run.
#[derive(Debug, Default)]
pub struct Checker {
    violations: Vec<String>,
    retired: BTreeSet<(String, String)>,
}

impl Checker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one violation.
    pub fn violation(&mut self, message: impl Into<String>) {
        self.violations.push(message.into());
    }

    /// Violations recorded so far (empty = run passed).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Marks `(origin, pool)` permanently retired: from now on it must
    /// never be seen live again anywhere.
    pub fn note_retired(&mut self, origin: &str, pool: &str) {
        self.retired.insert((origin.to_string(), pool.to_string()));
    }

    /// The retired `(origin, pool)` pairs.
    pub fn retired(&self) -> &BTreeSet<(String, String)> {
        &self.retired
    }

    /// Validates one finished delegation chain against the routing
    /// invariants: TTL strictly decreasing across every hop, hop count
    /// bounded by the initial TTL, and no domain visited twice.
    pub fn check_chain(
        &mut self,
        label: &str,
        initial_ttl: u32,
        hops: &[Hop],
        final_state: &RoutingState,
    ) {
        for hop in hops {
            if hop.ttl_after >= hop.ttl_before {
                self.violation(format!(
                    "{label}: TTL not strictly decreasing on hop {}->{} ({} -> {})",
                    hop.from, hop.to, hop.ttl_before, hop.ttl_after
                ));
            }
        }
        if hops.len() as u32 > initial_ttl {
            self.violation(format!(
                "{label}: chain took {} hops with an initial TTL of {initial_ttl}",
                hops.len()
            ));
        }
        let mut seen = BTreeSet::new();
        for domain in &final_state.visited {
            if !seen.insert(domain.clone()) {
                self.violation(format!("{label}: domain {domain} visited twice"));
            }
        }
        if final_state.ttl + final_state.visited.len() as u32 > initial_ttl {
            self.violation(format!(
                "{label}: final TTL {} plus {} visits exceeds the initial TTL {initial_ttl}",
                final_state.ttl,
                final_state.visited.len()
            ));
        }
    }

    /// Validates a route-cache reorder: the cache may only *permute* the
    /// candidate set — adding, dropping or substituting a candidate would
    /// mean it bypassed the directory.
    pub fn check_reorder(&mut self, label: &str, base: &[String], reordered: &[String]) {
        let mut a = base.to_vec();
        let mut b = reordered.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            self.violation(format!(
                "{label}: route cache changed the candidate set ({base:?} -> {reordered:?})"
            ));
        }
    }

    /// Checks a domain's converged gossip view of `origin` against the
    /// origin's actual live pool set, flagging divergence and any
    /// resurrection of a retired pool.
    pub fn check_converged_view(
        &mut self,
        observer: &str,
        origin: &str,
        observed_live: &[String],
        actual_live: &[String],
    ) {
        let observed: BTreeSet<&String> = observed_live.iter().collect();
        let actual: BTreeSet<&String> = actual_live.iter().collect();
        for pool in observed.difference(&actual) {
            let key = (origin.to_string(), (*pool).clone());
            if self.retired.contains(&key) {
                self.violation(format!(
                    "{observer} resurrected retired pool {pool} of origin {origin}"
                ));
            } else {
                self.violation(format!(
                    "{observer} believes origin {origin} hosts {pool}, which it does not"
                ));
            }
        }
        for pool in actual.difference(&observed) {
            self.violation(format!(
                "{observer} never converged on pool {pool} of origin {origin}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(from: &str, to: &str, before: u32, after: u32) -> Hop {
        Hop {
            from: from.into(),
            to: to.into(),
            ttl_before: before,
            ttl_after: after,
        }
    }

    #[test]
    fn a_clean_chain_passes() {
        let mut c = Checker::new();
        let state = RoutingState {
            ttl: 5,
            visited: vec!["a".into(), "b".into(), "c".into()],
        };
        c.check_chain(
            "req-1",
            8,
            &[hop("a", "b", 7, 6), hop("b", "c", 6, 5)],
            &state,
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn a_non_decreasing_ttl_is_flagged() {
        let mut c = Checker::new();
        let state = RoutingState {
            ttl: 7,
            visited: vec!["a".into(), "b".into()],
        };
        c.check_chain("req-2", 8, &[hop("a", "b", 7, 7)], &state);
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("not strictly decreasing")));
    }

    #[test]
    fn a_revisit_and_a_ttl_overdraw_are_flagged() {
        let mut c = Checker::new();
        let state = RoutingState {
            ttl: 6,
            visited: vec!["a".into(), "b".into(), "a".into()],
        };
        c.check_chain("req-3", 8, &[], &state);
        assert!(c.violations().iter().any(|v| v.contains("visited twice")));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("exceeds the initial TTL")));
    }

    #[test]
    fn route_cache_may_permute_but_not_edit_candidates() {
        let mut c = Checker::new();
        let base = vec!["x".to_string(), "y".to_string(), "z".to_string()];
        c.check_reorder(
            "req-4",
            &base,
            &["z".to_string(), "x".to_string(), "y".to_string()],
        );
        assert!(c.violations().is_empty());
        c.check_reorder("req-4", &base, &["z".to_string(), "x".to_string()]);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn a_stranded_lease_and_a_resurrection_are_flagged() {
        let mut checker = Checker::new();
        let mut ledger = LeaseLedger::new();
        let a = ledger.grant("k1".into(), "d1".into(), "d0".into(), "arch,==/hp".into());
        let b = ledger.grant("k2".into(), "d2".into(), "d0".into(), "arch,==/sun".into());
        ledger.release(a, &mut checker);
        let _ = b; // never released, never reclaimed
        ledger.final_check(&mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.contains("k2 stranded")));

        checker.note_retired("d3", "arch,==/sgi");
        checker.check_converged_view("d9", "d3", &["arch,==/sgi".to_string()], &[]);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.contains("resurrected")));
    }

    #[test]
    fn teardown_reclaim_prevents_stranding_and_release_after_reclaim_is_benign() {
        let mut checker = Checker::new();
        let mut ledger = LeaseLedger::new();
        let idx = ledger.grant("k1".into(), "d1".into(), "d0".into(), "p".into());
        assert_eq!(ledger.reclaim_where(|l| l.grantor == "d1"), 1);
        ledger.release(idx, &mut checker); // client raced teardown: fine
        ledger.final_check(&mut checker);
        assert!(
            checker.violations().is_empty(),
            "{:?}",
            checker.violations()
        );
        assert_eq!(ledger.count(LeaseState::Reclaimed), 1);
    }
}
