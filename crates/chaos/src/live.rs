//! The live-fleet executor: the same scenario specs, real daemons.
//!
//! Where [`crate::sim`] wires the federation logic onto a simulated
//! network, this executor stands the scenario's topology up as a fleet of
//! *real* `ypd` daemons — in-process ([`LiveMode::InProcess`], the
//! default, used by tests) or external binaries ([`LiveMode::External`],
//! used by the CI soak) — and replays the identical submission plan
//! against them over real sockets on scaled wall-clock time.
//!
//! Clients are what they are in production: long-lived sessions.  Each
//! entry domain gets one client connection that submits, holds and
//! releases allocations; a *vanishing* client is a connection dropped
//! with leases still held, which the daemon's session teardown must
//! reclaim.  A *killed* daemon takes its sessions (and every lease they
//! held) with it.
//!
//! Wall-clock runs cannot promise byte-identical logs — that is the
//! simulator's job.  What the live run checks is the same invariant
//! vocabulary where it is observable from outside: every ticket settles,
//! releases only fail when a fault explains it, and after a daemon
//! restarts the fleet re-converges (queries for the restarted domain's
//! architecture succeed again through gossip alone).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    Allocation, BackendKind, FederationConfig, PipelineBuilder, RemoteBackend, ResourceManager,
    ServerHandle, StageAddress,
};
use actyp_simnet::Rng;

use crate::plan::{submission_plan, PlannedSubmission};
use crate::scenario::{Fault, Scenario};

/// How long one submission may take to settle before the harness calls
/// its ticket lost.
const SETTLE_DEADLINE: Duration = Duration::from_secs(10);

/// How long a daemon gets to accept connections after a (re)start.
const READY_DEADLINE: Duration = Duration::from_secs(10);

/// How the fleet's daemons are hosted.
#[derive(Debug, Clone)]
pub enum LiveMode {
    /// Daemons served from this process (the test path).
    InProcess,
    /// Daemons spawned as external `ypd` processes (the CI soak path).
    External {
        /// Path to the `ypd` binary.
        ypd: PathBuf,
    },
}

/// Knobs for a live run.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Daemon hosting mode.
    pub mode: LiveMode,
    /// Domain `i` listens on `base_port + i` (fixed, so peers and
    /// restarts find each other).
    pub base_port: u16,
    /// Multiplier from scenario milliseconds to wall-clock milliseconds.
    pub time_scale: f64,
}

impl LiveOptions {
    /// In-process fleet at the given base port, unscaled time.
    pub fn in_process(base_port: u16) -> Self {
        LiveOptions {
            mode: LiveMode::InProcess,
            base_port,
            time_scale: 1.0,
        }
    }

    /// External `ypd` fleet at the given base port, unscaled time.
    pub fn external(ypd: PathBuf, base_port: u16) -> Self {
        LiveOptions {
            mode: LiveMode::External { ypd },
            base_port,
            time_scale: 1.0,
        }
    }
}

/// The outcome of one live run.
#[derive(Debug)]
pub struct LiveReport {
    /// Scenario name.
    pub scenario: String,
    /// Submissions replayed.
    pub submitted: u64,
    /// Submissions that settled with an allocation.
    pub succeeded: u64,
    /// Submissions that settled with an error (a legitimate outcome
    /// under faults, not a violation).
    pub failed: u64,
    /// Allocations released by their clients.
    pub released: u64,
    /// Allocations torn down by kills or vanishing clients.
    pub reclaimed: u64,
    /// Clients that vanished.
    pub vanished: u64,
    /// Invariant violations (empty = the run passed).
    pub violations: Vec<String>,
    /// Wall-clock-stamped narrative of the run.
    pub events: Vec<String>,
}

impl LiveReport {
    /// Whether every observable invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One daemon of the fleet.
enum Daemon {
    InProcess(ServerHandle),
    External(std::process::Child),
}

/// One allocation a client currently holds.
struct Held {
    /// Scenario time the client releases it.
    due_ms: u64,
    /// Entry domain whose client session holds it.
    entry: usize,
    allocation: Allocation,
}

struct LiveRun<'s> {
    scenario: &'s Scenario,
    options: &'s LiveOptions,
    daemons: Vec<Option<Daemon>>,
    clients: Vec<Option<RemoteBackend>>,
    held: Vec<Held>,
    started: Instant,
    kills: u64,
    report: LiveReport,
    /// `(scenario ms, domain)` of every restart, for the re-convergence
    /// check.
    restarts: Vec<(u64, usize)>,
    /// `(scenario ms, arch, succeeded)` per submission, ditto.
    outcomes: Vec<(u64, String, bool)>,
}

/// Runs a scenario against a real daemon fleet.
pub fn run_live(scenario: &Scenario, options: &LiveOptions) -> Result<LiveReport, String> {
    scenario.validate()?;
    if scenario.domains > 16 {
        return Err(format!(
            "live fleets are capped at 16 daemons ({} domains asked; use the simulator for scale)",
            scenario.domains
        ));
    }
    for spec in &scenario.faults {
        match spec.fault {
            Fault::Kill(_) | Fault::Restart(_) | Fault::VanishClients(_) => {}
            _ => {
                return Err(format!(
                    "the live executor drives kill/restart/vanish-clients faults; \
                     `{:?}` is simulator-only",
                    spec.fault
                ))
            }
        }
    }

    let mut run = LiveRun {
        scenario,
        options,
        daemons: (0..scenario.domains).map(|_| None).collect(),
        clients: (0..scenario.domains).map(|_| None).collect(),
        held: Vec::new(),
        started: Instant::now(),
        kills: 0,
        report: LiveReport {
            scenario: scenario.name.clone(),
            submitted: 0,
            succeeded: 0,
            failed: 0,
            released: 0,
            reclaimed: 0,
            vanished: 0,
            violations: Vec::new(),
            events: Vec::new(),
        },
        restarts: Vec::new(),
        outcomes: Vec::new(),
    };
    run.execute()?;
    Ok(run.report)
}

/// A fault sorts before a submission at the same instant, matching the
/// simulator's scheduling order.
enum Step {
    Fault(usize),
    Submit(usize),
}

impl LiveRun<'_> {
    fn execute(&mut self) -> Result<(), String> {
        for d in 0..self.scenario.domains {
            self.spawn(d)?;
        }
        self.event(format!(
            "fleet of {} daemons up on ports {}..={}",
            self.scenario.domains,
            self.options.base_port,
            self.options.base_port + (self.scenario.domains - 1) as u16
        ));

        let plan = submission_plan(self.scenario);
        let mut steps: Vec<(u64, Step)> = Vec::new();
        for (i, fault) in self.scenario.faults.iter().enumerate() {
            steps.push((fault.at_ms, Step::Fault(i)));
        }
        for (i, sub) in plan.iter().enumerate() {
            steps.push((sub.at_ms, Step::Submit(i)));
        }
        steps.sort_by_key(|(at, step)| (*at, matches!(step, Step::Submit(_)) as u8));

        let mut vanish_rng = Rng::new(self.scenario.seed ^ 0x11fe);
        for (at_ms, step) in steps {
            self.release_due(at_ms);
            self.sleep_until(at_ms);
            match step {
                Step::Fault(i) => {
                    let fault = self.scenario.faults[i].fault.clone();
                    self.apply_fault(at_ms, &fault, &mut vanish_rng)?;
                }
                Step::Submit(i) => self.submit(&plan[i]),
            }
        }

        self.release_due(u64::MAX);
        self.check_reconvergence();
        self.drain();
        Ok(())
    }

    // -- plumbing ----------------------------------------------------------

    fn event(&mut self, message: impl AsRef<str>) {
        self.report.events.push(format!(
            "[{:>8}ms] {}",
            self.started.elapsed().as_millis(),
            message.as_ref()
        ));
    }

    fn violation(&mut self, message: impl Into<String>) {
        let message = message.into();
        self.event(format!("VIOLATION: {message}"));
        self.report.violations.push(message);
    }

    fn addr_of(&self, d: usize) -> StageAddress {
        StageAddress::new("127.0.0.1", self.options.base_port + d as u16)
    }

    fn peers_of(&self, d: usize) -> Vec<StageAddress> {
        let mut peers: Vec<usize> = self
            .scenario
            .edges()
            .into_iter()
            .filter_map(|(a, b)| match () {
                _ if a == d => Some(b),
                _ if b == d => Some(a),
                _ => None,
            })
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers.into_iter().map(|p| self.addr_of(p)).collect()
    }

    fn sleep_until(&self, at_ms: u64) {
        let due = Duration::from_millis((at_ms as f64 * self.options.time_scale) as u64);
        let elapsed = self.started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }

    // -- fleet -------------------------------------------------------------

    fn spawn(&mut self, d: usize) -> Result<(), String> {
        let addr = self.addr_of(d);
        let peers = self.peers_of(d);
        let arch = self.scenario.arch_of(d).to_string();
        let machines = (self.scenario.pool_capacity as usize).max(2);
        let daemon = match &self.options.mode {
            LiveMode::InProcess => {
                let db = SyntheticFleet::new(
                    FleetSpec::homogeneous(machines, &arch, 512),
                    self.scenario.seed + d as u64,
                )
                .generate()
                .into_shared();
                let probe = if self.scenario.probe_interval_ms == 0 {
                    FederationConfig::default().probe_interval
                } else {
                    Duration::from_millis(self.scenario.probe_interval_ms)
                };
                let (handle, _backend) = PipelineBuilder::new()
                    .database(db)
                    .ttl(self.scenario.ttl)
                    .serve_federated(
                        &addr,
                        BackendKind::Embedded,
                        FederationConfig {
                            domain: self.scenario.domain_name(d),
                            ttl: self.scenario.ttl,
                            peers,
                            gossip_interval: Duration::from_millis(
                                self.scenario.gossip_interval_ms.max(1),
                            ),
                            route_cache: true,
                            probe_interval: probe,
                        },
                    )
                    .map_err(|e| format!("daemon {d} failed to start on {addr}: {e}"))?;
                Daemon::InProcess(handle)
            }
            LiveMode::External { ypd } => {
                let mut command = std::process::Command::new(ypd);
                command
                    .arg("--listen")
                    .arg(addr.to_string())
                    .arg("--domain")
                    .arg(self.scenario.domain_name(d))
                    .arg("--arch")
                    .arg(&arch)
                    .arg("--machines")
                    .arg(machines.to_string())
                    .arg("--seed")
                    .arg((self.scenario.seed + d as u64).to_string())
                    .arg("--ttl")
                    .arg(self.scenario.ttl.to_string())
                    .arg("--gossip-interval")
                    .arg(self.scenario.gossip_interval_ms.max(1).to_string());
                if self.scenario.probe_interval_ms > 0 {
                    command
                        .arg("--probe-interval")
                        .arg(self.scenario.probe_interval_ms.to_string());
                }
                for peer in &peers {
                    command.arg("--peer").arg(peer.to_string());
                }
                let child = command
                    .spawn()
                    .map_err(|e| format!("spawning ypd for daemon {d}: {e}"))?;
                Daemon::External(child)
            }
        };
        self.daemons[d] = Some(daemon);
        self.wait_ready(d)
    }

    /// Waits for a freshly (re)started daemon to accept connections.
    fn wait_ready(&mut self, d: usize) -> Result<(), String> {
        let addr = self.addr_of(d);
        let deadline = Instant::now() + READY_DEADLINE;
        loop {
            match std::net::TcpStream::connect((addr.host.as_str(), addr.port)) {
                Ok(_) => return Ok(()),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("daemon {d} never became ready on {addr}: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// The entry client for domain `d`, connecting (or reconnecting after
    /// a restart) on demand.
    fn client(&mut self, d: usize) -> Result<&RemoteBackend, String> {
        if self.clients[d].is_none() {
            let addr = self.addr_of(d);
            let backend = RemoteBackend::connect(&addr)
                .map_err(|e| format!("connecting a client to daemon {d} on {addr}: {e}"))?;
            self.clients[d] = Some(backend);
        }
        Ok(self.clients[d].as_ref().expect("just connected"))
    }

    // -- workload ----------------------------------------------------------

    fn submit(&mut self, sub: &PlannedSubmission) {
        self.report.submitted += 1;
        let query = format!("punch.rsrc.arch = {}\n", sub.arch);
        let label = format!(
            "req at {}ms via d{:03} for {}",
            sub.at_ms, sub.origin, sub.arch
        );
        let ticket = match self.client(sub.origin).and_then(|c| {
            c.submit_text(&query)
                .map_err(|e| format!("submit failed: {e}"))
        }) {
            Ok(ticket) => ticket,
            Err(reason) => {
                // An unreachable or dead entry daemon refuses the session:
                // the submission settles as a failure on the spot.
                self.event(format!("{label}: {reason}"));
                self.report.failed += 1;
                self.outcomes.push((sub.at_ms, sub.arch.clone(), false));
                // A broken connection must not poison later submissions.
                self.clients[sub.origin] = None;
                return;
            }
        };
        let outcome = self.clients[sub.origin]
            .as_ref()
            .expect("client connected above")
            .wait_deadline(ticket, SETTLE_DEADLINE);
        match outcome {
            None => {
                self.violation(format!("ticket lost: {label} never settled within 10s"));
                self.outcomes.push((sub.at_ms, sub.arch.clone(), false));
            }
            Some(Ok(allocations)) => {
                self.event(format!("{label}: granted {}", allocations[0].machine_name));
                self.report.succeeded += 1;
                self.outcomes.push((sub.at_ms, sub.arch.clone(), true));
                for allocation in allocations {
                    self.held.push(Held {
                        due_ms: sub.at_ms + sub.hold_ms,
                        entry: sub.origin,
                        allocation,
                    });
                }
            }
            Some(Err(e)) => {
                self.event(format!("{label}: refused ({e})"));
                self.report.failed += 1;
                self.outcomes.push((sub.at_ms, sub.arch.clone(), false));
            }
        }
    }

    /// Releases every held allocation due by scenario time `at_ms`.
    fn release_due(&mut self, at_ms: u64) {
        let due: Vec<Held> = {
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for held in self.held.drain(..) {
                if held.due_ms <= at_ms {
                    due.push(held);
                } else {
                    keep.push(held);
                }
            }
            self.held = keep;
            due
        };
        for held in due {
            self.release_one(held);
        }
    }

    fn release_one(&mut self, held: Held) {
        let result = match self.client(held.entry) {
            Ok(client) => client.release(&held.allocation).map_err(|e| e.to_string()),
            Err(e) => Err(e),
        };
        match result {
            Ok(()) => self.report.released += 1,
            Err(reason) if self.kills > 0 => {
                // A kill somewhere explains a dead grantor or a dropped
                // session: the daemon-side teardown owns the lease now.
                self.event(format!(
                    "release via d{:03} superseded by teardown ({reason})",
                    held.entry
                ));
                self.report.reclaimed += 1;
            }
            Err(reason) => {
                self.violation(format!(
                    "release of {} via d{:03} failed with no fault in flight: {reason}",
                    held.allocation.access_key, held.entry
                ));
            }
        }
    }

    // -- faults ------------------------------------------------------------

    fn apply_fault(&mut self, at_ms: u64, fault: &Fault, rng: &mut Rng) -> Result<(), String> {
        match fault {
            Fault::Kill(d) => {
                self.event(format!("fault: kill d{:03}", d));
                self.kills += 1;
                // The daemon's sessions die with it, leases and all.
                self.clients[*d] = None;
                let (dead, alive): (Vec<Held>, Vec<Held>) =
                    self.held.drain(..).partition(|h| h.entry == *d);
                self.report.reclaimed += dead.len() as u64;
                self.held = alive;
                match self.daemons[*d].take() {
                    Some(Daemon::InProcess(handle)) => {
                        handle.halt();
                        let _ = handle.join();
                    }
                    Some(Daemon::External(mut child)) => {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    None => {}
                }
            }
            Fault::Restart(d) => {
                self.event(format!("fault: restart d{:03}", d));
                self.spawn(*d)?;
                self.restarts.push((at_ms, *d));
            }
            Fault::VanishClients(pct) => {
                self.event(format!("fault: {pct}% of clients vanish"));
                let p = f64::from(*pct) / 100.0;
                for d in 0..self.scenario.domains {
                    if self.clients[d].is_none() || !rng.chance(p) {
                        continue;
                    }
                    // Dropping the connection without releasing is the
                    // whole fault: session teardown must reclaim.
                    self.clients[d] = None;
                    let (dropped, kept): (Vec<Held>, Vec<Held>) =
                        self.held.drain(..).partition(|h| h.entry == d);
                    self.event(format!(
                        "client of d{d:03} vanished holding {} leases",
                        dropped.len()
                    ));
                    self.report.vanished += 1;
                    self.report.reclaimed += dropped.len() as u64;
                    self.held = kept;
                }
            }
            other => {
                return Err(format!(
                    "fault {other:?} reached the live executor unvalidated"
                ))
            }
        }
        Ok(())
    }

    // -- end-of-run checks -------------------------------------------------

    /// After a restart, the fleet must re-learn the restarted domain's
    /// pools through gossip: some later query for an architecture only
    /// that domain hosts has to succeed.  (Only checked for architectures
    /// hosted by exactly one domain — elsewhere a sibling could mask the
    /// outage.)
    fn check_reconvergence(&mut self) {
        let restarts = self.restarts.clone();
        for (restart_ms, d) in restarts {
            let arch = self.scenario.arch_of(d).to_string();
            let sole_host = (0..self.scenario.domains)
                .filter(|&o| self.scenario.arch_of(o) == arch)
                .count()
                == 1;
            if !sole_host {
                continue;
            }
            let settle_ms = restart_ms + 2 * self.scenario.gossip_interval_ms;
            let later: Vec<&(u64, String, bool)> = self
                .outcomes
                .iter()
                .filter(|(at, a, _)| *at >= settle_ms && *a == arch)
                .collect();
            if !later.is_empty() && !later.iter().any(|(_, _, ok)| *ok) {
                self.violation(format!(
                    "fleet never re-converged on {arch} after d{d:03} restarted: \
                     {} later queries, zero successes",
                    later.len()
                ));
            }
        }
    }

    fn drain(&mut self) {
        // Ask every daemon still up to drain, then shut the clients down.
        for d in 0..self.scenario.domains {
            if self.daemons[d].is_some() {
                if let Ok(client) = self.client(d) {
                    let _ = client.halt_daemon();
                }
            }
            if let Some(client) = self.clients[d].take() {
                let _ = client.shutdown();
            }
        }
        for d in 0..self.scenario.domains {
            match self.daemons[d].take() {
                Some(Daemon::InProcess(handle)) => {
                    if let Err(e) = handle.join() {
                        self.violation(format!("daemon d{d:03} did not drain cleanly: {e}"));
                    }
                }
                Some(Daemon::External(mut child)) => {
                    let deadline = Instant::now() + Duration::from_secs(10);
                    loop {
                        match child.try_wait() {
                            Ok(Some(status)) => {
                                if !status.success() {
                                    self.violation(format!(
                                        "daemon d{d:03} exited uncleanly: {status}"
                                    ));
                                }
                                break;
                            }
                            Ok(None) if Instant::now() >= deadline => {
                                let _ = child.kill();
                                let _ = child.wait();
                                self.violation(format!(
                                    "daemon d{d:03} ignored the drain for 10s and was killed"
                                ));
                                break;
                            }
                            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                            Err(e) => {
                                self.violation(format!("waiting on daemon d{d:03}: {e}"));
                                break;
                            }
                        }
                    }
                }
                None => {}
            }
        }
        let (submitted, succeeded, failed, released, reclaimed) = (
            self.report.submitted,
            self.report.succeeded,
            self.report.failed,
            self.report.released,
            self.report.reclaimed,
        );
        self.event(format!(
            "end: {submitted} submitted, {succeeded} ok, {failed} refused, \
             {released} released, {reclaimed} reclaimed"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn scale_scenarios_are_rejected_with_a_pointer_at_the_simulator() {
        let s = scenario::wan_partition_stampede();
        let err = run_live(&s, &LiveOptions::in_process(39000)).unwrap_err();
        assert!(err.contains("simulator"), "{err}");
    }

    #[test]
    fn simulator_only_faults_are_rejected() {
        let mut s = scenario::trio_flap();
        s.faults.push(crate::scenario::FaultSpec {
            at_ms: 1,
            fault: Fault::Partition(1),
        });
        let err = run_live(&s, &LiveOptions::in_process(39100)).unwrap_err();
        assert!(err.contains("simulator-only"), "{err}");
    }
}
