//! The deterministic WAN executor.
//!
//! Stands a federated topology up *in one process, on virtual time*: each
//! domain gets the real gossip plane ([`GossipPlane`]), the real learned
//! route cache ([`RouteCache`]) and the real delegation chain
//! ([`run_chain`]) — only the transport is simulated, as latency sampled
//! from a seeded [`JitteredLatency`] over `simnet`'s event queue.  Faults
//! mutate the world between events; the invariant checker watches every
//! chain, every lease and the converged gossip views continuously.
//!
//! Everything observable lands in the [`EventLog`], and every random
//! choice derives from the scenario seed over `simnet`'s deterministic
//! RNG, so two runs of the same scenario produce byte-for-byte identical
//! logs — the determinism tests pin `digest()` equality across runs, and
//! a violation report names a reproducible run, not a flake.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use actyp_grid::MachineId;
use actyp_pipeline::api::QueryOutcome;
use actyp_pipeline::{
    run_chain, Allocation, AllocationError, GossipPlane, PeerDelegator, PeerUnavailable, RequestId,
    RouteCache, RoutingState, SessionKey,
};
use actyp_proto::frames::{AdvertDelta, AdvertVersion};
use actyp_simnet::net::JitteredLatency;
use actyp_simnet::{EventQueue, LatencyModel, Rng, SimDuration, SimTime};

use crate::invariants::{Checker, Hop, LeaseLedger, LeaseState};
use crate::log::EventLog;
use crate::plan::{submission_plan, PlannedSubmission};
use crate::scenario::{Fault, Scenario, WorkloadSpec};

/// What a delegation pays for discovering a dead peer: the connect
/// timeout, charged to the chain's response time.
const DEAD_DIAL_COST: SimDuration = SimDuration::from_millis(500);

/// Local processing cost of settling a query (parse, pool lookup,
/// scheduling) — dwarfed by WAN hops, but never zero.
const LOCAL_COST: SimDuration = SimDuration::from_millis(1);

/// Counters a run accumulates.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimMetrics {
    /// Submissions replayed.
    pub submitted: u64,
    /// Requests settled with an allocation.
    pub settled_ok: u64,
    /// Requests settled with an error.
    pub settled_err: u64,
    /// Requests settled by teardown (entry died or client vanished).
    pub settled_teardown: u64,
    /// Burst jobs refused because their sweep's budget was spent.
    pub budget_refusals: u64,
    /// Deadline-constrained jobs that settled after their deadline.
    pub deadline_misses: u64,
    /// Delegation hops taken across all chains.
    pub hops: u64,
    /// Longest single chain observed.
    pub max_chain_hops: u64,
    /// Anti-entropy exchanges delivered.
    pub gossip_exchanges: u64,
    /// Advertisement deltas shipped (pushes and ack replies).
    pub deltas_shipped: u64,
    /// Leases granted / released / reclaimed by teardown.
    pub leases_granted: u64,
    /// Leases returned by their clients.
    pub leases_released: u64,
    /// Leases reclaimed by session teardown.
    pub leases_reclaimed: u64,
    /// Clients that vanished mid-run.
    pub vanished_clients: u64,
    /// Route-cache hits and misses summed over every domain.
    pub route_hits: u64,
    /// Route-cache misses summed over every domain.
    pub route_misses: u64,
}

/// The outcome of one simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed the run used.
    pub seed: u64,
    /// Accumulated counters.
    pub metrics: SimMetrics,
    /// Invariant violations (empty = the run passed).
    pub violations: Vec<String>,
    /// The deterministic event log.
    pub log: EventLog,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The run's identity: an order-sensitive digest over the event log
    /// *and* the violation list.  Two same-seed runs must agree on it.
    pub fn digest(&self) -> u64 {
        let mut log = EventLog::new();
        let end = SimTime::ZERO;
        for v in &self.violations {
            log.push(end, format!("violation: {v}"));
        }
        self.log.digest() ^ log.digest().rotate_left(17)
    }
}

/// Runs one scenario to completion on virtual time.
pub fn run_sim(scenario: &Scenario) -> Result<SimReport, String> {
    scenario.validate()?;
    let world = World::build(scenario);
    let mut queue: EventQueue<Ev> = EventQueue::new();

    for (i, fault) in scenario.faults.iter().enumerate() {
        queue.schedule_at(at_ms(fault.at_ms), Ev::Fault(i));
    }
    for (i, sub) in world.plan.iter().enumerate() {
        queue.schedule_at(at_ms(sub.at_ms), Ev::Submit(i));
    }
    for d in 0..scenario.domains {
        // Staggered first ticks: real daemons never start in phase.
        let offset = (d as u64 * 37 + 13) % scenario.gossip_interval_ms.max(1);
        queue.schedule_at(at_ms(offset), Ev::Tick(d));
    }

    while let Some(event) = queue.pop() {
        world.now.set(event.at);
        world.handle(event.event, event.at, &mut queue);
    }

    Ok(world.finish())
}

/// Virtual-time instant for a millisecond offset.
fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Events the run is made of.
enum Ev {
    /// Apply `scenario.faults[i]`.
    Fault(usize),
    /// Replay `plan[i]`.
    Submit(usize),
    /// `plan[i]`'s outcome reaches its client.
    Settle(usize),
    /// `plan[i]`'s client returns its allocations.
    Release(usize),
    /// Domain `d`'s anti-entropy tick.
    Tick(usize),
    /// A gossip push lands: `from`'s deltas and version vector reach `to`.
    Deltas {
        from: usize,
        to: usize,
        deltas: Vec<AdvertDelta>,
        have: Vec<AdvertVersion>,
    },
    /// The ack lands back: `from`'s reply deltas reach `to`, confirming
    /// everything up to `vector`.
    Ack {
        from: usize,
        to: usize,
        reply: Vec<AdvertDelta>,
        vector: Vec<AdvertVersion>,
    },
}

/// One simulated pool: a capacity and its free share.
struct Pool {
    capacity: u32,
    free: u32,
}

/// One administrative domain.
struct Domain {
    name: String,
    arch: String,
    up: Cell<bool>,
    /// The real gossip plane (replaced wholesale on restart, exactly as a
    /// restarted daemon starts a fresh epoch).
    plane: RefCell<GossipPlane>,
    /// The real learned one-hop route cache.
    route: RefCell<RouteCache>,
    pools: RefCell<BTreeMap<String, Pool>>,
    /// What gossip taught this domain: pool name -> origin domains.
    known: RefCell<BTreeMap<String, BTreeSet<String>>>,
    /// Direct peers, ascending.
    peers: Vec<usize>,
    restarts: Cell<u64>,
    grants: Cell<u64>,
    renames: Cell<u64>,
}

impl Domain {
    fn live_pool_names(&self) -> Vec<String> {
        self.pools.borrow().keys().cloned().collect()
    }
}

/// One undirected peer link (endpoints live in the `link_of` index).
struct Link {
    up: Cell<bool>,
}

/// Per-request bookkeeping.
struct ReqState {
    settled: bool,
    vanished: bool,
    /// Ledger indices of the leases this request's chain granted.
    leases: Vec<usize>,
    /// Settle description, filled when the chain runs.
    outcome: Option<Result<String, String>>,
    hops: u64,
}

struct World<'s> {
    scenario: &'s Scenario,
    plan: Vec<PlannedSubmission>,
    domains: Vec<Domain>,
    links: Vec<Link>,
    link_of: BTreeMap<(usize, usize), usize>,
    partition: Cell<Option<usize>>,
    latency: JitteredLatency,
    rng: RefCell<Rng>,
    now: Cell<SimTime>,
    log: RefCell<EventLog>,
    checker: RefCell<Checker>,
    ledger: RefCell<LeaseLedger>,
    requests: RefCell<Vec<ReqState>>,
    budgets: RefCell<Vec<u32>>,
    metrics: RefCell<SimMetrics>,
    name_of: BTreeMap<String, usize>,
}

impl<'s> World<'s> {
    fn build(scenario: &'s Scenario) -> World<'s> {
        let edges = scenario.edges();
        let mut peers: Vec<Vec<usize>> = vec![Vec::new(); scenario.domains];
        let mut links = Vec::new();
        let mut link_of = BTreeMap::new();
        for &(a, b) in &edges {
            peers[a].push(b);
            peers[b].push(a);
            link_of.insert((a.min(b), a.max(b)), links.len());
            links.push(Link {
                up: Cell::new(true),
            });
        }
        let domains: Vec<Domain> = (0..scenario.domains)
            .map(|d| {
                let name = scenario.domain_name(d);
                let mut pools = BTreeMap::new();
                pools.insert(
                    scenario.pool_of(d),
                    Pool {
                        capacity: scenario.pool_capacity,
                        free: scenario.pool_capacity,
                    },
                );
                let plane = GossipPlane::with_epoch(&name, 1);
                plane.refresh_local(&pools.keys().cloned().collect::<Vec<_>>());
                let mut sorted = peers[d].clone();
                sorted.sort_unstable();
                sorted.dedup();
                Domain {
                    arch: scenario.arch_of(d).to_string(),
                    name,
                    up: Cell::new(true),
                    plane: RefCell::new(plane),
                    route: RefCell::new(RouteCache::new(true)),
                    pools: RefCell::new(pools),
                    known: RefCell::new(BTreeMap::new()),
                    peers: sorted,
                    restarts: Cell::new(0),
                    grants: Cell::new(0),
                    renames: Cell::new(0),
                }
            })
            .collect();
        let name_of = domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let plan = submission_plan(scenario);
        let requests = plan
            .iter()
            .map(|_| ReqState {
                settled: false,
                vanished: false,
                leases: Vec::new(),
                outcome: None,
                hops: 0,
            })
            .collect();
        let budgets = scenario
            .workloads
            .iter()
            .map(|w| match w {
                WorkloadSpec::Burst { budget, .. } => *budget,
                _ => u32::MAX,
            })
            .collect();
        World {
            plan,
            domains,
            links,
            link_of,
            partition: Cell::new(None),
            latency: JitteredLatency::new(
                SimDuration::from_micros((scenario.link_latency_ms * 1_000.0) as u64),
                SimDuration::from_micros((scenario.link_jitter_ms * 1_000.0) as u64),
                scenario.link_bandwidth_mb_s,
            ),
            rng: RefCell::new(Rng::new(scenario.seed ^ 0x000c_4a05)),
            now: Cell::new(SimTime::ZERO),
            log: RefCell::new(EventLog::new()),
            checker: RefCell::new(Checker::new()),
            ledger: RefCell::new(LeaseLedger::new()),
            requests: RefCell::new(requests),
            budgets: RefCell::new(budgets),
            metrics: RefCell::new(SimMetrics::default()),
            name_of,
            scenario,
        }
    }

    fn log(&self, message: impl AsRef<str>) {
        self.log.borrow_mut().push(self.now.get(), message);
    }

    /// Whether `a` and `b` can currently talk: both up, a direct link
    /// exists, the link is administratively up, and no partition cuts it.
    fn link_up(&self, a: usize, b: usize) -> bool {
        if !self.domains[a].up.get() || !self.domains[b].up.get() {
            return false;
        }
        let Some(&idx) = self.link_of.get(&(a.min(b), a.max(b))) else {
            return false;
        };
        if !self.links[idx].up.get() {
            return false;
        }
        match self.partition.get() {
            Some(split) => (a < split) == (b < split),
            None => true,
        }
    }

    /// One sampled one-way trip for a frame of `bytes`.
    fn trip(&self, bytes: usize) -> SimDuration {
        self.latency.sample(&mut self.rng.borrow_mut(), bytes)
    }

    // -- event dispatch ----------------------------------------------------

    fn handle(&self, event: Ev, now: SimTime, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Fault(i) => self.apply_fault(i, queue),
            Ev::Submit(i) => self.submit(i, queue),
            Ev::Settle(i) => self.settle(i, now, queue),
            Ev::Release(i) => self.release(i),
            Ev::Tick(d) => self.tick(d, now, queue),
            Ev::Deltas {
                from,
                to,
                deltas,
                have,
            } => self.deliver_deltas(from, to, deltas, have, queue),
            Ev::Ack {
                from,
                to,
                reply,
                vector,
            } => self.deliver_ack(from, to, reply, vector),
        }
    }

    // -- gossip ------------------------------------------------------------

    fn tick(&self, d: usize, now: SimTime, queue: &mut EventQueue<Ev>) {
        let domain = &self.domains[d];
        if !domain.up.get() {
            return; // a restart re-arms the tick
        }
        domain
            .plane
            .borrow()
            .refresh_local(&domain.live_pool_names());
        for &p in &domain.peers {
            if !self.link_up(d, p) {
                continue;
            }
            let (deltas, have) = {
                let plane = domain.plane.borrow();
                (
                    plane.deltas_for_peer(&self.domains[p].name),
                    plane.version_vector(),
                )
            };
            let bytes = 64
                + deltas
                    .iter()
                    .map(|dl| 32 + dl.entries.len() * 24)
                    .sum::<usize>();
            self.metrics.borrow_mut().deltas_shipped += deltas.len() as u64;
            queue.schedule_at(
                now + self.trip(bytes),
                Ev::Deltas {
                    from: d,
                    to: p,
                    deltas,
                    have,
                },
            );
        }
        let next = now + SimDuration::from_millis(self.scenario.gossip_interval_ms.max(1));
        if next <= at_ms(self.scenario.duration_ms) {
            queue.schedule_at(next, Ev::Tick(d));
        }
    }

    fn deliver_deltas(
        &self,
        from: usize,
        to: usize,
        deltas: Vec<AdvertDelta>,
        have: Vec<AdvertVersion>,
        queue: &mut EventQueue<Ev>,
    ) {
        if !self.link_up(from, to) {
            if !deltas.is_empty() {
                self.log(format!(
                    "gossip-drop {} -> {}: {} deltas lost with the link",
                    self.domains[from].name,
                    self.domains[to].name,
                    deltas.len()
                ));
            }
            return;
        }
        let receiver = &self.domains[to];
        let sender_name = self.domains[from].name.clone();
        self.apply_deltas(to, &deltas);
        self.metrics.borrow_mut().gossip_exchanges += 1;
        // Mirror of `FederatedBackend::handle_advert_delta`: record what
        // the sender has, reply with everything it lacks, and note the
        // reply as acked optimistically.
        let reply = {
            let plane = receiver.plane.borrow();
            plane.note_peer_versions(&sender_name, &have);
            plane.refresh_local(&receiver.live_pool_names());
            let reply = plane.deltas_since(&have);
            let vector = plane.version_vector();
            plane.note_acked(&sender_name, vector);
            reply
        };
        let bytes = 64
            + reply
                .iter()
                .map(|dl| 32 + dl.entries.len() * 24)
                .sum::<usize>();
        self.metrics.borrow_mut().deltas_shipped += reply.len() as u64;
        queue.schedule_at(
            self.now.get() + self.trip(bytes),
            Ev::Ack {
                from: to,
                to: from,
                reply,
                vector: have,
            },
        );
    }

    fn deliver_ack(
        &self,
        from: usize,
        to: usize,
        reply: Vec<AdvertDelta>,
        vector: Vec<AdvertVersion>,
    ) {
        if !self.link_up(from, to) {
            return; // the next push's fresh `have` corrects the acked state
        }
        let receiver = &self.domains[to];
        receiver
            .plane
            .borrow()
            .note_acked(&self.domains[from].name, vector);
        self.apply_deltas(to, &reply);
    }

    /// Applies inbound deltas at domain `to` and folds the events into
    /// its directory knowledge and route cache — the sim's mirror of
    /// `FederatedBackend::apply_gossip_deltas`.
    fn apply_deltas(&self, to: usize, deltas: &[AdvertDelta]) {
        use actyp_pipeline::GossipEvent;
        if deltas.is_empty() {
            return;
        }
        let receiver = &self.domains[to];
        let events = receiver.plane.borrow().apply(deltas);
        for event in events {
            match event {
                GossipEvent::PoolUp { origin, pool } => {
                    self.log(format!(
                        "gossip {}: pool-up {pool} @ {origin}",
                        receiver.name
                    ));
                    receiver
                        .known
                        .borrow_mut()
                        .entry(pool)
                        .or_default()
                        .insert(origin);
                }
                GossipEvent::PoolDown { origin, pool } => {
                    self.log(format!(
                        "gossip {}: pool-down {pool} @ {origin}",
                        receiver.name
                    ));
                    receiver.route.borrow().invalidate_pool(&pool);
                    let mut known = receiver.known.borrow_mut();
                    if let Some(origins) = known.get_mut(&pool) {
                        origins.remove(&origin);
                        if origins.is_empty() {
                            known.remove(&pool);
                        }
                    }
                }
                GossipEvent::OriginReset { origin } => {
                    self.log(format!("gossip {}: origin-reset {origin}", receiver.name));
                    receiver.route.borrow().invalidate_next_hop(&origin);
                    let mut known = receiver.known.borrow_mut();
                    known.retain(|_, origins| {
                        origins.remove(&origin);
                        !origins.is_empty()
                    });
                }
            }
        }
    }

    // -- delegation --------------------------------------------------------

    /// The candidate sweep for a chain at domain `d`: every direct peer,
    /// those gossip says host the wanted pool first, then route-cache
    /// front-reordering — checked to be a pure permutation.
    fn candidates(&self, d: usize, pool: &str) -> Vec<String> {
        let domain = &self.domains[d];
        let known = domain.known.borrow();
        let hosts = known.get(pool);
        let mut preferred: Vec<String> = Vec::new();
        let mut rest: Vec<String> = Vec::new();
        for &p in &domain.peers {
            let name = self.domains[p].name.clone();
            if hosts.is_some_and(|h| h.contains(&name)) {
                preferred.push(name);
            } else {
                rest.push(name);
            }
        }
        let base: Vec<String> = preferred.into_iter().chain(rest).collect();
        let mut ordered = base.clone();
        if let Some(hop) = domain.route.borrow().next_hop(pool) {
            if let Some(pos) = ordered.iter().position(|c| *c == hop) {
                let hit = ordered.remove(pos);
                ordered.insert(0, hit);
            }
        }
        self.checker.borrow_mut().check_reorder(
            &format!("candidates at {}", domain.name),
            &base,
            &ordered,
        );
        ordered
    }

    fn peer_failed(&self, at: usize, peer: &str) {
        let domain = &self.domains[at];
        self.log(format!("peer-failed {} noticed by {}", peer, domain.name));
        domain.route.borrow().invalidate_next_hop(peer);
        let mut known = domain.known.borrow_mut();
        known.retain(|_, origins| {
            origins.remove(peer);
            !origins.is_empty()
        });
    }

    /// One local allocation attempt at domain `d` for request `req`.
    fn local_try(&self, req: usize, d: usize, pool: &str) -> QueryOutcome {
        let domain = &self.domains[d];
        let mut pools = domain.pools.borrow_mut();
        let Some(entry) = pools.get_mut(pool) else {
            return Err(AllocationError::NoSuchResources);
        };
        if entry.free == 0 {
            return Err(AllocationError::NoneAvailable);
        }
        entry.free -= 1;
        let grant = domain.grants.get() + 1;
        domain.grants.set(grant);
        let origin_name = self.domains[self.plan[req].origin].name.clone();
        let key = SessionKey::derive(RequestId(req as u64), d as u32, grant);
        let lease = self.ledger.borrow_mut().grant(
            key.to_string(),
            domain.name.clone(),
            origin_name,
            pool.to_string(),
        );
        self.requests.borrow_mut()[req].leases.push(lease);
        self.metrics.borrow_mut().leases_granted += 1;
        Ok(vec![Allocation {
            request: RequestId(req as u64),
            machine: MachineId(d as u64 * 100_000 + grant),
            machine_name: format!("{}-{}-m{grant:04}", domain.name, domain.arch),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: None,
            access_key: key,
            pool: pool.to_string(),
            pool_instance: d as u32,
            examined: 1,
        }])
    }

    // -- workload ----------------------------------------------------------

    fn submit(&self, i: usize, queue: &mut EventQueue<Ev>) {
        let sub = &self.plan[i];
        let origin = &self.domains[sub.origin];
        self.metrics.borrow_mut().submitted += 1;
        let label = format!("req-{i:05}");
        if self.budgets.borrow()[sub.workload] == 0 {
            self.log(format!("submit {label} at {}: budget refused", origin.name));
            self.metrics.borrow_mut().budget_refusals += 1;
            self.requests.borrow_mut()[i].settled = true;
            return;
        }
        if !origin.up.get() {
            self.log(format!(
                "submit {label} at {}: entry domain dead",
                origin.name
            ));
            self.metrics.borrow_mut().settled_err += 1;
            self.requests.borrow_mut()[i].settled = true;
            return;
        }
        self.log(format!(
            "submit {label} at {} arch={}",
            origin.name, sub.arch
        ));
        let pool = format!("arch,==/{}", sub.arch);
        let latency = Cell::new(LOCAL_COST);
        let hops = RefCell::new(Vec::new());
        let ctx = ChainCtx {
            world: self,
            at: sub.origin,
            req: i,
            latency: &latency,
            hops: &hops,
        };
        let (outcome, state) = run_chain(
            &origin.name,
            &pool,
            RoutingState::new(self.scenario.ttl),
            |q| self.local_try(i, sub.origin, q),
            &ctx,
        );
        let hops = hops.into_inner();
        self.checker
            .borrow_mut()
            .check_chain(&label, self.scenario.ttl, &hops, &state);
        {
            let mut metrics = self.metrics.borrow_mut();
            metrics.hops += hops.len() as u64;
            metrics.max_chain_hops = metrics.max_chain_hops.max(hops.len() as u64);
        }
        let summary = match &outcome {
            Ok(allocations) => {
                if sub.deadline_ms.is_some() {
                    self.budgets.borrow_mut()[sub.workload] -= 1;
                }
                Ok(format!(
                    "granted by {} (pool {})",
                    allocations[0].machine_name, allocations[0].pool
                ))
            }
            Err(e) => Err(format!("{e}")),
        };
        {
            let mut requests = self.requests.borrow_mut();
            requests[i].outcome = Some(summary);
            requests[i].hops = hops.len() as u64;
        }
        queue.schedule_at(self.now.get() + latency.get(), Ev::Settle(i));
    }

    fn settle(&self, i: usize, now: SimTime, queue: &mut EventQueue<Ev>) {
        let sub = &self.plan[i];
        let label = format!("req-{i:05}");
        let (vanished, outcome, hops) = {
            let mut requests = self.requests.borrow_mut();
            requests[i].settled = true;
            (
                requests[i].vanished,
                requests[i].outcome.clone(),
                requests[i].hops,
            )
        };
        let entry_dead = !self.domains[sub.origin].up.get();
        if vanished || entry_dead {
            // The client (or its entry daemon) is gone: the outcome is
            // settled by session teardown, and the leases were reclaimed
            // the moment the session died.
            self.log(format!(
                "settle {label}: torn down ({})",
                if vanished {
                    "client vanished"
                } else {
                    "entry died"
                }
            ));
            self.metrics.borrow_mut().settled_teardown += 1;
            self.free_reclaimed_capacity(i);
            return;
        }
        let elapsed_ms = (now.as_nanos() - at_ms(sub.at_ms).as_nanos()) / 1_000_000;
        match outcome {
            Some(Ok(desc)) => {
                self.log(format!(
                    "settle {label}: ok, {desc}, hops={hops}, {elapsed_ms}ms"
                ));
                self.metrics.borrow_mut().settled_ok += 1;
                queue.schedule_at(now + SimDuration::from_millis(sub.hold_ms), Ev::Release(i));
            }
            Some(Err(desc)) => {
                self.log(format!(
                    "settle {label}: err `{desc}`, hops={hops}, {elapsed_ms}ms"
                ));
                self.metrics.borrow_mut().settled_err += 1;
            }
            None => {
                // Unreachable by construction: every chain stores an
                // outcome before scheduling its settle.
                self.checker
                    .borrow_mut()
                    .violation(format!("{label} settled without an outcome"));
            }
        }
        if sub.deadline_ms.is_some_and(|d| elapsed_ms > d) {
            self.log(format!("deadline-miss {label}: {elapsed_ms}ms"));
            self.metrics.borrow_mut().deadline_misses += 1;
        }
    }

    fn release(&self, i: usize) {
        let label = format!("req-{i:05}");
        let (vanished, leases) = {
            let requests = self.requests.borrow();
            (requests[i].vanished, requests[i].leases.clone())
        };
        if vanished {
            return; // teardown already reclaimed everything
        }
        let mut released = 0;
        for lease in leases {
            let (state, grantor, pool) = {
                let ledger = self.ledger.borrow();
                let l = &ledger.leases()[lease];
                (l.state, l.grantor.clone(), l.pool.clone())
            };
            if state == LeaseState::Held {
                self.give_back_capacity(&grantor, &pool);
                released += 1;
            }
            let mut checker = self.checker.borrow_mut();
            self.ledger.borrow_mut().release(lease, &mut checker);
        }
        if released > 0 {
            self.log(format!("release {label}: {released} leases"));
        }
    }

    /// Returns a lease's slot to its pool, if the grantor still hosts it.
    fn give_back_capacity(&self, grantor: &str, pool: &str) {
        let Some(&d) = self.name_of.get(grantor) else {
            return;
        };
        let mut pools = self.domains[d].pools.borrow_mut();
        if let Some(entry) = pools.get_mut(pool) {
            entry.free = (entry.free + 1).min(entry.capacity);
        }
    }

    /// After a teardown settle, any lease the dead session held at a
    /// *living* grantor frees its slot (the grantor tears the session's
    /// allocations down itself).
    fn free_reclaimed_capacity(&self, i: usize) {
        let leases = self.requests.borrow()[i].leases.clone();
        for lease in leases {
            let (state, key, grantor, pool) = {
                let ledger = self.ledger.borrow();
                let l = &ledger.leases()[lease];
                (l.state, l.key.clone(), l.grantor.clone(), l.pool.clone())
            };
            if state == LeaseState::Held {
                if let Some(&d) = self.name_of.get(&grantor) {
                    if self.domains[d].up.get() {
                        self.give_back_capacity(&grantor, &pool);
                    }
                }
                self.ledger.borrow_mut().reclaim_where(|l| l.key == key);
            }
        }
    }

    // -- faults ------------------------------------------------------------

    fn apply_fault(&self, i: usize, queue: &mut EventQueue<Ev>) {
        let fault = &self.scenario.faults[i].fault;
        match fault {
            Fault::Kill(k) => self.kill(*k),
            Fault::Restart(k) => self.restart(*k, queue),
            Fault::Partition(split) => {
                self.log(format!("fault: partition at split {split}"));
                self.partition.set(Some(*split));
            }
            Fault::Heal => {
                self.log("fault: partition healed");
                self.partition.set(None);
            }
            Fault::LinkDown(a, b) => self.set_link(*a, *b, false),
            Fault::LinkUp(a, b) => self.set_link(*a, *b, true),
            Fault::RetirePools(k, n) => self.retire_pools(*k, *n, false),
            Fault::RenamePools(k, n) => self.retire_pools(*k, *n, true),
            Fault::VanishClients(pct) => self.vanish_clients(*pct),
        }
    }

    fn kill(&self, k: usize) {
        let domain = &self.domains[k];
        self.log(format!("fault: kill {}", domain.name));
        domain.up.set(false);
        // Every session at the dead daemon dies: allocations it granted
        // are freed locally...
        for pool in domain.pools.borrow_mut().values_mut() {
            pool.free = pool.capacity;
        }
        // ...leases it granted are gone, and leases its *clients* held at
        // living grantors are torn down by the peer sessions dropping.
        let name = domain.name.clone();
        let to_free: Vec<(String, String)> = self
            .ledger
            .borrow()
            .leases()
            .iter()
            .filter(|l| l.state == LeaseState::Held && l.grantor != name && l.origin == name)
            .map(|l| (l.grantor.clone(), l.pool.clone()))
            .collect();
        for (grantor, pool) in to_free {
            self.give_back_capacity(&grantor, &pool);
        }
        let reclaimed = self
            .ledger
            .borrow_mut()
            .reclaim_where(|l| l.grantor == name || l.origin == name);
        if reclaimed > 0 {
            self.log(format!(
                "teardown: {reclaimed} leases reclaimed with {name}"
            ));
        }
    }

    fn restart(&self, k: usize, queue: &mut EventQueue<Ev>) {
        let domain = &self.domains[k];
        self.log(format!("fault: restart {}", domain.name));
        domain.up.set(true);
        domain.restarts.set(domain.restarts.get() + 1);
        let epoch = 1 + domain.restarts.get();
        let plane = GossipPlane::with_epoch(&domain.name, epoch);
        plane.refresh_local(&domain.live_pool_names());
        *domain.plane.borrow_mut() = plane;
        *domain.route.borrow_mut() = RouteCache::new(true);
        domain.known.borrow_mut().clear();
        queue.schedule_at(
            self.now.get() + SimDuration::from_millis(self.scenario.gossip_interval_ms.max(1)),
            Ev::Tick(k),
        );
    }

    fn set_link(&self, a: usize, b: usize, up: bool) {
        let state = if up { "up" } else { "down" };
        self.log(format!(
            "fault: link {} <-> {} {state}",
            self.domains[a].name, self.domains[b].name
        ));
        if let Some(&idx) = self.link_of.get(&(a.min(b), a.max(b))) {
            self.links[idx].up.set(up);
        }
    }

    fn retire_pools(&self, k: usize, n: usize, rename: bool) {
        let domain = &self.domains[k];
        let victims: Vec<String> = domain.pools.borrow().keys().take(n).cloned().collect();
        for pool in victims {
            let mut pools = domain.pools.borrow_mut();
            let old = pools.remove(&pool).expect("pool existed");
            self.checker.borrow_mut().note_retired(&domain.name, &pool);
            if rename {
                let generation = domain.renames.get() + 1;
                domain.renames.set(generation);
                let successor = format!("{pool}+v{generation}");
                self.log(format!(
                    "fault: {} renames pool {pool} -> {successor}",
                    domain.name
                ));
                pools.insert(
                    successor,
                    Pool {
                        capacity: old.capacity,
                        free: old.capacity,
                    },
                );
            } else {
                self.log(format!("fault: {} retires pool {pool}", domain.name));
            }
        }
        // The next tick's refresh advertises the death (and any successor).
    }

    fn vanish_clients(&self, pct: u8) {
        let p = f64::from(pct) / 100.0;
        self.log(format!("fault: {pct}% of clients vanish"));
        let count = self.requests.borrow().len();
        let mut vanished = 0;
        for i in 0..count {
            let eligible = {
                let requests = self.requests.borrow();
                let r = &requests[i];
                let has_held = r
                    .leases
                    .iter()
                    .any(|&l| self.ledger.borrow().leases()[l].state == LeaseState::Held);
                !r.vanished && (has_held || !r.settled)
            };
            if !eligible || !self.rng.borrow_mut().chance(p) {
                continue;
            }
            self.requests.borrow_mut()[i].vanished = true;
            vanished += 1;
            let already_settled = self.requests.borrow()[i].settled;
            if already_settled {
                // A settled client vanishing strands nothing: its session
                // teardown reclaims every lease it still held.
                self.log(format!("vanish req-{i:05}: teardown reclaims its leases"));
                self.free_reclaimed_capacity(i);
            }
            // An unsettled one is handled when its settle event fires.
        }
        self.metrics.borrow_mut().vanished_clients += vanished;
    }

    // -- final checks ------------------------------------------------------

    /// Domains reachable from `from` over currently-up links.
    fn reachable(&self, from: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut frontier = VecDeque::new();
        if self.domains[from].up.get() {
            seen.insert(from);
            frontier.push_back(from);
        }
        while let Some(d) = frontier.pop_front() {
            for &p in &self.domains[d].peers {
                if !seen.contains(&p) && self.link_up(d, p) {
                    seen.insert(p);
                    frontier.push_back(p);
                }
            }
        }
        seen
    }

    fn finish(self) -> SimReport {
        {
            let mut checker = self.checker.borrow_mut();
            for (i, r) in self.requests.borrow().iter().enumerate() {
                if !r.settled {
                    checker.violation(format!("ticket lost: req-{i:05} never settled"));
                }
            }
            self.ledger.borrow().final_check(&mut checker);
        }

        // Gossip convergence: every up domain's view of every up,
        // reachable origin matches that origin's actual live pools — and
        // nothing retired was resurrected along the way.
        for o in 0..self.domains.len() {
            if !self.domains[o].up.get() {
                continue;
            }
            let reachable = self.reachable(o);
            for &g in &reachable {
                if g == o {
                    continue;
                }
                let observed = self.domains[o]
                    .plane
                    .borrow()
                    .live_pools(&self.domains[g].name);
                let actual = self.domains[g].live_pool_names();
                self.checker.borrow_mut().check_converged_view(
                    &self.domains[o].name,
                    &self.domains[g].name,
                    &observed,
                    &actual,
                );
            }
        }

        let checker = self.checker.into_inner();
        let ledger = self.ledger.into_inner();
        let mut metrics = self.metrics.into_inner();
        metrics.leases_released = ledger.count(LeaseState::Released) as u64;
        metrics.leases_reclaimed = ledger.count(LeaseState::Reclaimed) as u64;
        for d in &self.domains {
            let route = d.route.borrow();
            metrics.route_hits += route.hits();
            metrics.route_misses += route.misses();
        }
        let mut log = self.log.into_inner();
        log.push(
            self.now.get(),
            format!(
                "end: {} submitted, {} ok, {} err, {} teardown, {} budget-refused, \
                 {} deadline-miss, {} hops, {} exchanges, {} leases ({} released, {} reclaimed)",
                metrics.submitted,
                metrics.settled_ok,
                metrics.settled_err,
                metrics.settled_teardown,
                metrics.budget_refusals,
                metrics.deadline_misses,
                metrics.hops,
                metrics.gossip_exchanges,
                metrics.leases_granted,
                metrics.leases_released,
                metrics.leases_reclaimed,
            ),
        );
        SimReport {
            scenario: self.scenario.name.clone(),
            seed: self.scenario.seed,
            metrics,
            violations: checker.violations().to_vec(),
            log,
        }
    }
}

/// The [`PeerDelegator`] a simulated chain runs against: candidates from
/// the world's directory knowledge, delegation by recursing into the
/// target domain's own [`run_chain`], latency accumulated per hop.
struct ChainCtx<'w, 's> {
    world: &'w World<'s>,
    /// Domain this chain step runs at.
    at: usize,
    req: usize,
    latency: &'w Cell<SimDuration>,
    hops: &'w RefCell<Vec<Hop>>,
}

impl PeerDelegator for ChainCtx<'_, '_> {
    fn candidates(&self, query: &str, _state: &RoutingState) -> Vec<String> {
        self.world.candidates(self.at, query)
    }

    fn delegate(
        &self,
        domain: &str,
        query: &str,
        state: &RoutingState,
    ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable> {
        let world = self.world;
        let Some(&target) = world.name_of.get(domain) else {
            return Err(PeerUnavailable {
                transport: false,
                reason: format!("unknown domain {domain}"),
            });
        };
        if !world.link_up(self.at, target) {
            // The dial times out; the chain pays for discovering it.
            self.latency.set(self.latency.get() + DEAD_DIAL_COST);
            return Err(PeerUnavailable {
                transport: true,
                reason: format!("link {} -> {domain} is dead", world.domains[self.at].name),
            });
        }
        // Request over, reply back.
        let round_trip = world.trip(256) + world.trip(256);
        self.latency.set(self.latency.get() + round_trip);
        let ttl_before = state.ttl;
        let ctx = ChainCtx {
            world,
            at: target,
            req: self.req,
            latency: self.latency,
            hops: self.hops,
        };
        let (outcome, downstream) = run_chain(
            domain,
            query,
            state.clone(),
            |q| world.local_try(self.req, target, q),
            &ctx,
        );
        self.hops.borrow_mut().push(Hop {
            from: world.domains[self.at].name.clone(),
            to: domain.to_string(),
            ttl_before,
            ttl_after: downstream.ttl,
        });
        if let Ok(allocations) = &outcome {
            if let Some(first) = allocations.first() {
                world.domains[self.at]
                    .route
                    .borrow()
                    .learn(&first.pool, domain);
            }
        }
        Ok((outcome, downstream))
    }

    fn peer_failed(&self, domain: &str) {
        self.world.peer_failed(self.at, domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn the_trio_scenario_passes_and_reproduces() {
        let s = scenario::trio_flap();
        let a = run_sim(&s).expect("runs");
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(a.metrics.settled_ok > 0, "some requests succeed");
        let b = run_sim(&s).expect("runs");
        assert_eq!(a.digest(), b.digest(), "same seed, same run");
        assert_eq!(a.log.render(), b.log.render());
    }

    #[test]
    fn a_different_seed_is_a_different_run() {
        let mut s = scenario::trio_flap();
        let a = run_sim(&s).expect("runs");
        s.seed = 999;
        let b = run_sim(&s).expect("runs");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn killed_domains_strand_no_leases() {
        let s = scenario::trio_flap();
        let report = run_sim(&s).expect("runs");
        assert!(report.passed(), "violations: {:?}", report.violations);
        // The kill reclaims something in this scenario.
        assert!(report.metrics.leases_granted > 0);
        assert_eq!(
            report.metrics.leases_granted,
            report.metrics.leases_released + report.metrics.leases_reclaimed
        );
    }
}
