//! The deterministic event log.
//!
//! Every observable thing a simulated run does lands here as one line,
//! stamped with the virtual time and a monotonically increasing sequence
//! number.  Two runs of the same scenario with the same seed must produce
//! *identical* logs — that is the property the determinism tests pin, and
//! it is what makes a chaos failure a repro instead of an anecdote: the
//! digest names the run, the log is the run.

use actyp_simnet::SimTime;

/// An append-only, order-sensitive log of one run.
#[derive(Debug, Default)]
pub struct EventLog {
    lines: Vec<String>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event at virtual time `at`.
    pub fn push(&mut self, at: SimTime, message: impl AsRef<str>) {
        self.lines.push(format!(
            "[{:>15}ns #{:06}] {}",
            at.as_nanos(),
            self.lines.len(),
            message.as_ref()
        ));
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether anything has been logged.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The logged lines, in order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole log as one newline-separated string.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }

    /// An order-sensitive FNV-1a digest of the log.  Equal digests over
    /// same-seed runs are the byte-for-byte reproducibility guarantee.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.lines {
            for byte in line.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_simnet::SimDuration;

    #[test]
    fn digest_is_order_sensitive() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        let mut a = EventLog::new();
        a.push(t, "first");
        a.push(t, "second");
        let mut b = EventLog::new();
        b.push(t, "second");
        b.push(t, "first");
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn identical_logs_share_a_digest() {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        for i in 0..100u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(i);
            a.push(t, format!("event {i}"));
            b.push(t, format!("event {i}"));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.render(), b.render());
    }
}
