//! # actyp-chaos — the deterministic WAN chaos harness
//!
//! The federation and gossip planes make promises — TTL-bounded loop-free
//! delegation, session-teardown lease reclamation, anti-entropy
//! convergence with no resurrection of retired pools — that only get
//! exercised when the WAN misbehaves.  This crate turns "the WAN
//! misbehaves" into a reproducible artifact:
//!
//! * [`scenario`] — a scenario is *data*: topology, link characteristics,
//!   fault schedule, workload mix and seed, with a plain-text format that
//!   round-trips.  A small catalog of named scenarios covers partitions,
//!   peer flapping, hotspot stampedes, mass client vanish, pool
//!   retirement/rename waves and deadline-constrained bursts.
//! * [`plan`] — expands a scenario's workload mix into the ordered
//!   submission trace both executors replay.
//! * [`sim`] — the simulated executor: hundreds of domains wired over
//!   `actyp-simnet`'s event queue, running the *real* delegation chain,
//!   gossip plane and route cache on virtual time.  Same seed, same run —
//!   byte-for-byte, digest-checked.
//! * [`live`] — the live executor: the same scenario spec driven against
//!   a fleet of real `ypd` daemons (in-process or external binaries) on
//!   scaled wall-clock time.
//! * [`invariants`] — the checker both executors feed: no lease stranded,
//!   no ticket lost, TTL strictly decreasing, no revisits, route cache
//!   advisory-only, gossip converged with nothing resurrected.
//! * [`log`] — the order-sensitive event log whose digest is a run's
//!   identity.
//!
//! The `chaos` binary fronts all of it: `chaos list`, `chaos sim`,
//! `chaos live`.

pub mod invariants;
pub mod live;
pub mod log;
pub mod plan;
pub mod scenario;
pub mod sim;

pub use invariants::{Checker, Hop, Lease, LeaseLedger, LeaseState};
pub use live::{run_live, LiveMode, LiveOptions, LiveReport};
pub use log::EventLog;
pub use plan::{submission_plan, PlannedSubmission};
pub use scenario::{by_name, catalog, Fault, FaultSpec, Scenario, Topology, WorkloadSpec};
pub use sim::{run_sim, SimMetrics, SimReport};
