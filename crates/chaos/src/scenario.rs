//! Declarative chaos scenarios.
//!
//! A scenario is *data*: the federated topology, the per-link WAN
//! characteristics, a fault schedule, a workload mix and a seed.  Nothing
//! in it names an executor — the same spec drives the deterministic
//! simulator ([`crate::sim`]) and the live `ypd` fleet ([`crate::live`]),
//! which is what lets a failure found in simulation be replayed against
//! real daemons (and vice versa).
//!
//! Scenarios render to and parse from a line-based text format so they can
//! live in files, ride in bug reports, and be diffed.  The round trip is
//! exact: `parse(render(s)) == s`.

use actyp_simnet::Rng;

/// How the domains are wired together.  Every edge peers both endpoints
/// at each other (links in the federation are symmetric TCP sessions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Domain `i` peers `i±1` modulo the domain count.
    Ring,
    /// A ring plus `k` seeded random chords per domain — the small-world
    /// shape a WAN federation grows into.
    Chords(usize),
    /// Domain 0 peers every other domain.
    Star,
    /// Every domain peers every other domain.
    Full,
    /// Domain `i` peers `i±1` without the wrap-around edge.
    Line,
}

impl Topology {
    /// The undirected edge list for `domains` domains.  Chord placement
    /// draws from its own RNG stream derived from `seed`, so the wiring
    /// is a pure function of `(topology, domains, seed)`.
    pub fn edges(&self, domains: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let push = |a: usize, b: usize, edges: &mut Vec<(usize, usize)>| {
            if a == b {
                return;
            }
            let e = (a.min(b), a.max(b));
            if !edges.contains(&e) {
                edges.push(e);
            }
        };
        match self {
            Topology::Ring | Topology::Chords(_) => {
                for i in 0..domains {
                    push(i, (i + 1) % domains, &mut edges);
                }
                if let Topology::Chords(k) = self {
                    let mut rng = Rng::new(seed ^ 0xc0de);
                    for i in 0..domains {
                        for _ in 0..*k {
                            push(i, rng.index(domains), &mut edges);
                        }
                    }
                }
            }
            Topology::Star => {
                for i in 1..domains {
                    push(0, i, &mut edges);
                }
            }
            Topology::Full => {
                for i in 0..domains {
                    for j in (i + 1)..domains {
                        push(i, j, &mut edges);
                    }
                }
            }
            Topology::Line => {
                for i in 1..domains {
                    push(i - 1, i, &mut edges);
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    fn render(&self) -> String {
        match self {
            Topology::Ring => "ring".to_string(),
            Topology::Chords(k) => format!("chords {k}"),
            Topology::Star => "star".to_string(),
            Topology::Full => "full".to_string(),
            Topology::Line => "line".to_string(),
        }
    }

    fn parse(rest: &str) -> Result<Self, String> {
        let mut it = rest.split_whitespace();
        match it.next() {
            Some("ring") => Ok(Topology::Ring),
            Some("star") => Ok(Topology::Star),
            Some("full") => Ok(Topology::Full),
            Some("line") => Ok(Topology::Line),
            Some("chords") => {
                let k = it
                    .next()
                    .ok_or("chords needs a per-domain chord count")?
                    .parse()
                    .map_err(|_| "chords count must be an integer".to_string())?;
                Ok(Topology::Chords(k))
            }
            other => Err(format!("unknown topology {other:?}")),
        }
    }
}

/// One scheduled adversarial event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The named domain dies: its daemon stops, its sessions tear down, leases
    /// it granted are reclaimed, leases its clients held are released.
    Kill(usize),
    /// A previously killed domain comes back — same pools, fresh gossip
    /// epoch, empty caches.
    Restart(usize),
    /// The WAN splits: domains `< split` can no longer reach domains
    /// `>= split` (direct links across the cut drop).
    Partition(usize),
    /// The partition heals.
    Heal,
    /// One direct link goes down (peer flapping, half one flap).
    LinkDown(usize, usize),
    /// The link comes back.
    LinkUp(usize, usize),
    /// `RetirePools(domain, n)`: the domain retires its first `n` pools —
    /// gossip must propagate the death and never resurrect them.
    RetirePools(usize, usize),
    /// `RenamePools(domain, n)`: the old names are retired
    /// and a successor pool appears in the same domain.
    RenamePools(usize, usize),
    /// Every client holding leases vanishes with the given probability (%) —
    /// session teardown must reclaim every lease they held.
    VanishClients(u8),
}

/// A fault and when it strikes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Milliseconds from scenario start.
    pub at_ms: u64,
    /// What happens.
    pub fault: Fault,
}

/// One component of the workload mix.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// An open Poisson population submitting from random entry domains.
    /// `arch = None` means each request targets a seeded-random
    /// architecture.
    Background {
        /// Start offset, ms.
        start_ms: u64,
        /// Clients in the population.
        clients: usize,
        /// Requests each client issues.
        requests_per_client: usize,
        /// Aggregate arrival rate, requests per second.
        rate_per_s: f64,
        /// Target architecture (`None` = any).
        arch: Option<String>,
        /// Mean lease hold time, ms.
        hold_ms: u64,
    },
    /// The paper's hot spot: a class of students submitting the *same*
    /// query within a short window, all hammering one pool name.
    Hotspot {
        /// Window start, ms.
        at_ms: u64,
        /// Students in the class.
        clients: usize,
        /// Submission window length, ms.
        window_ms: u64,
        /// The one architecture the whole class wants.
        arch: String,
        /// Mean lease hold time, ms.
        hold_ms: u64,
    },
    /// A deadline/budget-constrained parameter sweep (Nimrod/G-style):
    /// `jobs` submissions, each expected to settle within `deadline_ms`,
    /// with at most `budget` allocations granted to the sweep in total.
    Burst {
        /// Sweep start, ms.
        at_ms: u64,
        /// Jobs in the sweep.
        jobs: usize,
        /// Per-job settle deadline, ms.
        deadline_ms: u64,
        /// Allocation budget for the whole sweep.
        budget: u32,
        /// Target architecture.
        arch: String,
        /// Mean lease hold time, ms.
        hold_ms: u64,
    },
}

/// A complete scenario: everything two executors need to reproduce the
/// same run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name (the catalog key and the repro handle).
    pub name: String,
    /// Master seed: every random choice in a run derives from it.
    pub seed: u64,
    /// Number of administrative domains.
    pub domains: usize,
    /// How they are wired.
    pub topology: Topology,
    /// Architectures assigned round-robin: domain `i` hosts one pool of
    /// `archs[i % archs.len()]` machines.
    pub archs: Vec<String>,
    /// Delegation time-to-live granted to queries.
    pub ttl: u32,
    /// Concurrent allocations each domain's pool can hold.
    pub pool_capacity: u32,
    /// Anti-entropy gossip period, ms.
    pub gossip_interval_ms: u64,
    /// Peer health-probe period, ms (live fleets only; the simulator's
    /// delegation failures prune eagerly).
    pub probe_interval_ms: u64,
    /// Base one-way link latency, ms.
    pub link_latency_ms: f64,
    /// Uniform jitter on top of the base latency, ms.
    pub link_jitter_ms: f64,
    /// Link bandwidth, MB/s (serialisation delay for large frames).
    pub link_bandwidth_mb_s: f64,
    /// Scenario length, ms: workload and faults all land before this;
    /// gossip keeps ticking until it so the fleet can converge.
    pub duration_ms: u64,
    /// The fault schedule, sorted by time.
    pub faults: Vec<FaultSpec>,
    /// The workload mix.
    pub workloads: Vec<WorkloadSpec>,
}

impl Scenario {
    /// The architecture domain `i` hosts.
    pub fn arch_of(&self, domain: usize) -> &str {
        &self.archs[domain % self.archs.len()]
    }

    /// The full pool name domain `i` initially hosts (the same
    /// `signature/identifier` shape the pipeline's pool manager builds
    /// for an architecture-constrained query).
    pub fn pool_of(&self, domain: usize) -> String {
        format!("arch,==/{}", self.arch_of(domain))
    }

    /// Domain `i`'s name, identical across executors.
    pub fn domain_name(&self, domain: usize) -> String {
        format!("d{domain:03}")
    }

    /// The undirected peer edges of this scenario's topology.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.topology.edges(self.domains, self.seed)
    }

    /// Basic shape validation shared by both executors.
    pub fn validate(&self) -> Result<(), String> {
        if self.domains < 2 {
            return Err("a federation scenario needs at least 2 domains".to_string());
        }
        if self.archs.is_empty() {
            return Err("at least one architecture is required".to_string());
        }
        if self.ttl == 0 {
            return Err("ttl must be positive".to_string());
        }
        if self.pool_capacity == 0 {
            return Err("pool capacity must be positive".to_string());
        }
        for f in &self.faults {
            let domain = match f.fault {
                Fault::Kill(d)
                | Fault::Restart(d)
                | Fault::RetirePools(d, _)
                | Fault::RenamePools(d, _) => Some(d),
                Fault::LinkDown(a, b) | Fault::LinkUp(a, b) => Some(a.max(b)),
                Fault::Partition(split) => {
                    if split == 0 || split >= self.domains {
                        return Err(format!(
                            "partition split {split} must fall strictly inside 0..{}",
                            self.domains
                        ));
                    }
                    None
                }
                Fault::Heal | Fault::VanishClients(_) => None,
            };
            if let Some(d) = domain {
                if d >= self.domains {
                    return Err(format!(
                        "fault names domain {d}, but only {} exist",
                        self.domains
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders the scenario in the text format [`Scenario::parse`] reads.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "domains {}", self.domains);
        let _ = writeln!(out, "topology {}", self.topology.render());
        let _ = writeln!(out, "archs {}", self.archs.join(","));
        let _ = writeln!(out, "ttl {}", self.ttl);
        let _ = writeln!(out, "pool-capacity {}", self.pool_capacity);
        let _ = writeln!(out, "gossip-interval-ms {}", self.gossip_interval_ms);
        let _ = writeln!(out, "probe-interval-ms {}", self.probe_interval_ms);
        let _ = writeln!(out, "link-latency-ms {}", self.link_latency_ms);
        let _ = writeln!(out, "link-jitter-ms {}", self.link_jitter_ms);
        let _ = writeln!(out, "link-bandwidth-mb-s {}", self.link_bandwidth_mb_s);
        let _ = writeln!(out, "duration-ms {}", self.duration_ms);
        for f in &self.faults {
            let body = match &f.fault {
                Fault::Kill(d) => format!("kill {d}"),
                Fault::Restart(d) => format!("restart {d}"),
                Fault::Partition(split) => format!("partition {split}"),
                Fault::Heal => "heal".to_string(),
                Fault::LinkDown(a, b) => format!("link-down {a} {b}"),
                Fault::LinkUp(a, b) => format!("link-up {a} {b}"),
                Fault::RetirePools(d, n) => format!("retire-pools {d} {n}"),
                Fault::RenamePools(d, n) => format!("rename-pools {d} {n}"),
                Fault::VanishClients(p) => format!("vanish-clients {p}"),
            };
            let _ = writeln!(out, "fault {} {}", f.at_ms, body);
        }
        for w in &self.workloads {
            let body = match w {
                WorkloadSpec::Background {
                    start_ms,
                    clients,
                    requests_per_client,
                    rate_per_s,
                    arch,
                    hold_ms,
                } => format!(
                    "background start={start_ms} clients={clients} requests={requests_per_client} \
                     rate={rate_per_s} arch={} hold={hold_ms}",
                    arch.as_deref().unwrap_or("any")
                ),
                WorkloadSpec::Hotspot {
                    at_ms,
                    clients,
                    window_ms,
                    arch,
                    hold_ms,
                } => format!(
                    "hotspot at={at_ms} clients={clients} window={window_ms} arch={arch} \
                     hold={hold_ms}"
                ),
                WorkloadSpec::Burst {
                    at_ms,
                    jobs,
                    deadline_ms,
                    budget,
                    arch,
                    hold_ms,
                } => format!(
                    "burst at={at_ms} jobs={jobs} deadline={deadline_ms} budget={budget} \
                     arch={arch} hold={hold_ms}"
                ),
            };
            let _ = writeln!(out, "workload {body}");
        }
        out
    }

    /// Parses the text format.  Unknown keys are errors (a typo must not
    /// silently change what a repro runs).
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut s = Scenario {
            name: String::new(),
            seed: 0,
            domains: 0,
            topology: Topology::Ring,
            archs: Vec::new(),
            ttl: 8,
            pool_capacity: 8,
            gossip_interval_ms: 1000,
            probe_interval_ms: 0,
            link_latency_ms: 40.0,
            link_jitter_ms: 8.0,
            link_bandwidth_mb_s: 4.0,
            duration_ms: 10_000,
            faults: Vec::new(),
            workloads: Vec::new(),
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            let fail = |m: String| format!("line {}: {m}", lineno + 1);
            match key {
                "name" => s.name = rest.to_string(),
                "seed" => s.seed = rest.parse().map_err(|_| fail("bad seed".into()))?,
                "domains" => s.domains = rest.parse().map_err(|_| fail("bad domains".into()))?,
                "topology" => s.topology = Topology::parse(rest).map_err(fail)?,
                "archs" => {
                    s.archs = rest
                        .split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect()
                }
                "ttl" => s.ttl = rest.parse().map_err(|_| fail("bad ttl".into()))?,
                "pool-capacity" => {
                    s.pool_capacity = rest.parse().map_err(|_| fail("bad pool capacity".into()))?
                }
                "gossip-interval-ms" => {
                    s.gossip_interval_ms = rest
                        .parse()
                        .map_err(|_| fail("bad gossip interval".into()))?
                }
                "probe-interval-ms" => {
                    s.probe_interval_ms = rest
                        .parse()
                        .map_err(|_| fail("bad probe interval".into()))?
                }
                "link-latency-ms" => {
                    s.link_latency_ms = rest.parse().map_err(|_| fail("bad latency".into()))?
                }
                "link-jitter-ms" => {
                    s.link_jitter_ms = rest.parse().map_err(|_| fail("bad jitter".into()))?
                }
                "link-bandwidth-mb-s" => {
                    s.link_bandwidth_mb_s =
                        rest.parse().map_err(|_| fail("bad bandwidth".into()))?
                }
                "duration-ms" => {
                    s.duration_ms = rest.parse().map_err(|_| fail("bad duration".into()))?
                }
                "fault" => s.faults.push(parse_fault(rest).map_err(fail)?),
                "workload" => s.workloads.push(parse_workload(rest).map_err(fail)?),
                other => return Err(fail(format!("unknown key `{other}`"))),
            }
        }
        if s.name.is_empty() {
            return Err("scenario has no name".to_string());
        }
        if s.domains == 0 {
            return Err("scenario has no domains".to_string());
        }
        s.validate()?;
        Ok(s)
    }
}

fn parse_fault(rest: &str) -> Result<FaultSpec, String> {
    let mut it = rest.split_whitespace();
    let at_ms: u64 = it
        .next()
        .ok_or("fault needs a time")?
        .parse()
        .map_err(|_| "bad fault time".to_string())?;
    let kind = it.next().ok_or("fault needs a kind")?;
    let mut num = |what: &str| -> Result<usize, String> {
        it.next()
            .ok_or(format!("{kind} needs {what}"))?
            .parse()
            .map_err(|_| format!("{kind}: bad {what}"))
    };
    let fault = match kind {
        "kill" => Fault::Kill(num("a domain")?),
        "restart" => Fault::Restart(num("a domain")?),
        "partition" => Fault::Partition(num("a split index")?),
        "heal" => Fault::Heal,
        "link-down" => Fault::LinkDown(num("a domain")?, num("a domain")?),
        "link-up" => Fault::LinkUp(num("a domain")?, num("a domain")?),
        "retire-pools" => Fault::RetirePools(num("a domain")?, num("a count")?),
        "rename-pools" => Fault::RenamePools(num("a domain")?, num("a count")?),
        "vanish-clients" => Fault::VanishClients(num("a percentage")? as u8),
        other => return Err(format!("unknown fault `{other}`")),
    };
    Ok(FaultSpec { at_ms, fault })
}

fn parse_workload(rest: &str) -> Result<WorkloadSpec, String> {
    let mut it = rest.split_whitespace();
    let kind = it.next().ok_or("workload needs a kind")?.to_string();
    let mut fields: Vec<(String, String)> = Vec::new();
    for tok in it {
        let (k, v) = tok
            .split_once('=')
            .ok_or(format!("workload field `{tok}` is not key=value"))?;
        fields.push((k.to_string(), v.to_string()));
    }
    let get = |k: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .ok_or(format!("{kind} workload needs {k}="))
    };
    let int = |k: &str| -> Result<u64, String> {
        get(k)?.parse().map_err(|_| format!("{kind}: bad {k}"))
    };
    Ok(match kind.as_str() {
        "background" => WorkloadSpec::Background {
            start_ms: int("start")?,
            clients: int("clients")? as usize,
            requests_per_client: int("requests")? as usize,
            rate_per_s: get("rate")?
                .parse()
                .map_err(|_| "background: bad rate".to_string())?,
            arch: match get("arch")? {
                "any" => None,
                a => Some(a.to_string()),
            },
            hold_ms: int("hold")?,
        },
        "hotspot" => WorkloadSpec::Hotspot {
            at_ms: int("at")?,
            clients: int("clients")? as usize,
            window_ms: int("window")?,
            arch: get("arch")?.to_string(),
            hold_ms: int("hold")?,
        },
        "burst" => WorkloadSpec::Burst {
            at_ms: int("at")?,
            jobs: int("jobs")? as usize,
            deadline_ms: int("deadline")?,
            budget: int("budget")? as u32,
            arch: get("arch")?.to_string(),
            hold_ms: int("hold")?,
        },
        other => return Err(format!("unknown workload `{other}`")),
    })
}

// ---------------------------------------------------------------------------
// The catalog
// ---------------------------------------------------------------------------

/// The built-in scenario catalog.  Each entry is a named, seeded spec; the
/// `chaos` binary lists and runs them, CI smokes a subset, and the test
/// suite pins the acceptance scenario (`wan-partition-stampede`).
pub fn catalog() -> Vec<Scenario> {
    vec![
        trio_flap(),
        wan_partition_stampede(),
        retire_rename_wave(),
        mass_vanish(),
        deadline_burst(),
    ]
}

/// Looks a scenario up by name in the catalog.
pub fn by_name(name: &str) -> Option<Scenario> {
    catalog().into_iter().find(|s| s.name == name)
}

/// Three domains in a star, the centre's two spokes hosting distinct
/// architectures; one spoke is killed mid-run and later healed.  Small
/// enough to run against a real `ypd` fleet, adversarial enough to catch a
/// stranded lease or a directory that never notices the death — this is
/// the scenario CI drives through *both* executors.
pub fn trio_flap() -> Scenario {
    Scenario {
        name: "trio-flap".to_string(),
        seed: 11,
        domains: 3,
        topology: Topology::Star,
        archs: vec!["sun".to_string(), "hp".to_string(), "sgi".to_string()],
        ttl: 4,
        pool_capacity: 8,
        gossip_interval_ms: 200,
        probe_interval_ms: 300,
        link_latency_ms: 5.0,
        link_jitter_ms: 1.0,
        link_bandwidth_mb_s: 10.0,
        duration_ms: 12_000,
        faults: vec![
            FaultSpec {
                at_ms: 3_000,
                fault: Fault::Kill(2),
            },
            FaultSpec {
                at_ms: 6_000,
                fault: Fault::Restart(2),
            },
        ],
        workloads: vec![
            WorkloadSpec::Background {
                start_ms: 500,
                clients: 4,
                requests_per_client: 3,
                rate_per_s: 6.0,
                arch: None,
                hold_ms: 200,
            },
            WorkloadSpec::Burst {
                at_ms: 1_500,
                jobs: 5,
                deadline_ms: 2_500,
                budget: 5,
                arch: "hp".to_string(),
                hold_ms: 200,
            },
            // Post-heal: the whole class wants the revived spoke's
            // architecture — convergence is observable as successes here.
            WorkloadSpec::Hotspot {
                at_ms: 8_000,
                clients: 6,
                window_ms: 800,
                arch: "sgi".to_string(),
                hold_ms: 200,
            },
        ],
    }
}

/// The acceptance scenario: 120 domains on a chorded ring, a 60/60
/// partition, a hot-spot stampede *during* the partition and another
/// after the heal, one domain killed and restarted, and a 40% client
/// vanish near the end.  Two same-seed runs must produce identical event
/// logs.
pub fn wan_partition_stampede() -> Scenario {
    Scenario {
        name: "wan-partition-stampede".to_string(),
        seed: 42,
        domains: 120,
        topology: Topology::Chords(2),
        archs: vec![
            "sun".to_string(),
            "hp".to_string(),
            "sgi".to_string(),
            "linux".to_string(),
        ],
        ttl: 8,
        pool_capacity: 8,
        gossip_interval_ms: 2_000,
        probe_interval_ms: 0,
        link_latency_ms: 40.0,
        link_jitter_ms: 8.0,
        link_bandwidth_mb_s: 4.0,
        duration_ms: 90_000,
        faults: vec![
            FaultSpec {
                at_ms: 20_000,
                fault: Fault::Partition(60),
            },
            FaultSpec {
                at_ms: 45_000,
                fault: Fault::Heal,
            },
            FaultSpec {
                at_ms: 55_000,
                fault: Fault::Kill(17),
            },
            FaultSpec {
                at_ms: 60_000,
                fault: Fault::Restart(17),
            },
            // Mid-stampede, while leases are actually held: session
            // teardown has real work to reclaim.
            FaultSpec {
                at_ms: 50_500,
                fault: Fault::VanishClients(40),
            },
        ],
        workloads: vec![
            WorkloadSpec::Background {
                start_ms: 1_000,
                clients: 40,
                requests_per_client: 4,
                rate_per_s: 10.0,
                arch: None,
                hold_ms: 600,
            },
            // The stampede inside the partition: only the hp pools on the
            // client's side of the cut can serve it.
            WorkloadSpec::Hotspot {
                at_ms: 30_000,
                clients: 80,
                window_ms: 2_000,
                arch: "hp".to_string(),
                hold_ms: 300,
            },
            // And again after the heal, when the full fleet is reachable.
            WorkloadSpec::Hotspot {
                at_ms: 50_000,
                clients: 60,
                window_ms: 1_500,
                arch: "hp".to_string(),
                hold_ms: 300,
            },
            WorkloadSpec::Burst {
                at_ms: 25_000,
                jobs: 25,
                deadline_ms: 4_000,
                budget: 15,
                arch: "sgi".to_string(),
                hold_ms: 250,
            },
        ],
    }
}

/// A pool rename/retirement wave across a mid-size ring: gossip must
/// retire the old names everywhere and never resurrect them, while the
/// successors become delegable.
pub fn retire_rename_wave() -> Scenario {
    let faults = (0..6)
        .map(|i| FaultSpec {
            at_ms: 8_000 + i * 1_500,
            fault: if i % 2 == 0 {
                Fault::RetirePools(3 * i as usize, 1)
            } else {
                Fault::RenamePools(3 * i as usize, 1)
            },
        })
        .collect();
    Scenario {
        name: "retire-rename-wave".to_string(),
        seed: 7,
        domains: 24,
        topology: Topology::Ring,
        archs: vec!["sun".to_string(), "hp".to_string(), "sgi".to_string()],
        ttl: 8,
        pool_capacity: 6,
        gossip_interval_ms: 1_000,
        probe_interval_ms: 0,
        link_latency_ms: 20.0,
        link_jitter_ms: 4.0,
        link_bandwidth_mb_s: 8.0,
        duration_ms: 30_000,
        faults,
        workloads: vec![WorkloadSpec::Background {
            start_ms: 1_000,
            clients: 12,
            requests_per_client: 4,
            rate_per_s: 8.0,
            arch: None,
            hold_ms: 400,
        }],
    }
}

/// Heavy load, then 70% of the clients vanish at once: every lease they
/// held must be reclaimed by session teardown — none stranded.
pub fn mass_vanish() -> Scenario {
    Scenario {
        name: "mass-vanish".to_string(),
        seed: 23,
        domains: 30,
        topology: Topology::Chords(1),
        archs: vec!["sun".to_string(), "hp".to_string()],
        ttl: 6,
        pool_capacity: 6,
        gossip_interval_ms: 1_000,
        probe_interval_ms: 0,
        link_latency_ms: 25.0,
        link_jitter_ms: 5.0,
        link_bandwidth_mb_s: 6.0,
        duration_ms: 30_000,
        faults: vec![FaultSpec {
            at_ms: 15_000,
            fault: Fault::VanishClients(70),
        }],
        workloads: vec![
            WorkloadSpec::Background {
                start_ms: 500,
                clients: 25,
                requests_per_client: 5,
                rate_per_s: 15.0,
                arch: None,
                hold_ms: 2_000,
            },
            WorkloadSpec::Hotspot {
                at_ms: 10_000,
                clients: 30,
                window_ms: 1_000,
                arch: "hp".to_string(),
                hold_ms: 2_500,
            },
        ],
    }
}

/// Deadline/budget-constrained sweeps racing link flaps: the budget caps
/// grants, the flapping links force re-routing, and every job still
/// settles (grant, budget refusal, or failure — never silence).
pub fn deadline_burst() -> Scenario {
    Scenario {
        name: "deadline-burst".to_string(),
        seed: 31,
        domains: 40,
        topology: Topology::Chords(1),
        archs: vec![
            "sun".to_string(),
            "hp".to_string(),
            "sgi".to_string(),
            "linux".to_string(),
        ],
        ttl: 8,
        pool_capacity: 4,
        gossip_interval_ms: 1_500,
        probe_interval_ms: 0,
        link_latency_ms: 30.0,
        link_jitter_ms: 10.0,
        link_bandwidth_mb_s: 4.0,
        duration_ms: 40_000,
        faults: vec![
            FaultSpec {
                at_ms: 9_000,
                fault: Fault::LinkDown(0, 1),
            },
            FaultSpec {
                at_ms: 12_000,
                fault: Fault::LinkDown(10, 11),
            },
            FaultSpec {
                at_ms: 16_000,
                fault: Fault::LinkUp(0, 1),
            },
            FaultSpec {
                at_ms: 19_000,
                fault: Fault::LinkUp(10, 11),
            },
        ],
        workloads: vec![
            WorkloadSpec::Burst {
                at_ms: 8_000,
                jobs: 30,
                deadline_ms: 3_000,
                budget: 20,
                arch: "hp".to_string(),
                hold_ms: 500,
            },
            WorkloadSpec::Burst {
                at_ms: 18_000,
                jobs: 30,
                deadline_ms: 3_000,
                budget: 12,
                arch: "linux".to_string(),
                hold_ms: 500,
            },
            WorkloadSpec::Background {
                start_ms: 1_000,
                clients: 10,
                requests_per_client: 4,
                rate_per_s: 6.0,
                arch: None,
                hold_ms: 400,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_scenario_round_trips_through_text() {
        for scenario in catalog() {
            let text = scenario.render();
            let parsed = Scenario::parse(&text)
                .unwrap_or_else(|e| panic!("{} fails to re-parse: {e}", scenario.name));
            assert_eq!(parsed, scenario, "{} round trip", scenario.name);
        }
    }

    #[test]
    fn every_catalog_scenario_validates() {
        for scenario in catalog() {
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
    }

    #[test]
    fn topology_edges_are_deterministic_and_symmetric_free() {
        let a = Topology::Chords(2).edges(50, 9);
        let b = Topology::Chords(2).edges(50, 9);
        assert_eq!(a, b);
        // Sorted, unique, no self-loops, and the ring spine is present.
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|(x, y)| x < y));
        for i in 0..49 {
            assert!(a.contains(&(i, i + 1)), "ring edge {i}");
        }
    }

    #[test]
    fn unknown_keys_and_bad_faults_are_rejected() {
        assert!(Scenario::parse("name x\ndomains 3\nfrobnicate 9\n").is_err());
        assert!(parse_fault("100 explode 3").is_err());
        assert!(parse_fault("oops kill 3").is_err());
        assert!(parse_workload("background start=0").is_err());
    }

    #[test]
    fn partition_split_must_fall_inside_the_domain_range() {
        let mut s = trio_flap();
        s.faults.push(FaultSpec {
            at_ms: 1,
            fault: Fault::Partition(3),
        });
        assert!(s.validate().is_err());
    }
}
