//! The chaos harness CLI.
//!
//! ```text
//! chaos list
//! chaos show --scenario NAME
//! chaos sim  --scenario NAME [--seed N] [--runs N] [--print-log]
//! chaos sim  --suite quick|full
//! chaos sim  --file PATH [...]
//! chaos live --scenario NAME [--ypd PATH] [--base-port P] [--time-scale F]
//! ```
//!
//! `sim` runs a scenario `--runs` times (default 2) and requires every
//! run to produce the identical digest — determinism is asserted on every
//! invocation, not just in the test suite.  Exit status is nonzero on any
//! invariant violation or digest mismatch.  `live` replays the same spec
//! against a fleet of real daemons: in-process by default, external
//! processes with `--ypd`.

use std::process::ExitCode;

use actyp_chaos::{by_name, catalog, run_live, run_sim, LiveOptions, Scenario, SimReport};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("list") => list(),
        Some("show") => show(&argv[1..]),
        Some("sim") => sim(&argv[1..]),
        Some("live") => live(&argv[1..]),
        _ => {
            eprintln!("usage: chaos <list|show|sim|live> [options]");
            eprintln!("  chaos list");
            eprintln!("  chaos show --scenario NAME");
            eprintln!("  chaos sim  --scenario NAME [--seed N] [--runs N] [--print-log]");
            eprintln!("  chaos sim  --suite quick|full [--runs N]");
            eprintln!("  chaos sim  --file PATH [--seed N] [--runs N] [--print-log]");
            eprintln!("  chaos live --scenario NAME [--ypd PATH] [--base-port P] [--time-scale F]");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` lookup.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn list() -> ExitCode {
    for scenario in catalog() {
        println!(
            "{:<24} seed={:<4} domains={:<4} duration={:>6}ms  faults={} workloads={}",
            scenario.name,
            scenario.seed,
            scenario.domains,
            scenario.duration_ms,
            scenario.faults.len(),
            scenario.workloads.len()
        );
    }
    ExitCode::SUCCESS
}

/// Loads the scenario named by `--scenario` or `--file`, applying a
/// `--seed` override.
fn load(args: &[String]) -> Result<Scenario, String> {
    let mut scenario = if let Some(path) = opt(args, "--file") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        Scenario::parse(&text)?
    } else if let Some(name) = opt(args, "--scenario") {
        by_name(&name).ok_or_else(|| {
            format!("no scenario named `{name}` (run `chaos list` for the catalog)")
        })?
    } else {
        return Err("pass --scenario NAME or --file PATH".to_string());
    };
    if let Some(seed) = opt(args, "--seed") {
        scenario.seed = seed.parse().map_err(|e| format!("--seed {seed}: {e}"))?;
    }
    Ok(scenario)
}

fn show(args: &[String]) -> ExitCode {
    match load(args) {
        Ok(scenario) => {
            print!("{}", scenario.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos show: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sim(args: &[String]) -> ExitCode {
    let runs: u32 = match opt(args, "--runs").map(|r| r.parse()).transpose() {
        Ok(runs) => runs.unwrap_or(2).max(1),
        Err(e) => {
            eprintln!("chaos sim: --runs: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios: Vec<Scenario> = if let Some(suite) = opt(args, "--suite") {
        let all = catalog();
        match suite.as_str() {
            "full" => all,
            "quick" => all.into_iter().filter(|s| s.domains <= 40).collect(),
            other => {
                eprintln!("chaos sim: unknown suite `{other}` (quick or full)");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match load(args) {
            Ok(scenario) => vec![scenario],
            Err(e) => {
                eprintln!("chaos sim: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut failed = false;
    for scenario in &scenarios {
        match sim_one(scenario, runs, flag(args, "--print-log")) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("chaos sim: {}: {e}", scenario.name);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn sim_one(scenario: &Scenario, runs: u32, print_log: bool) -> Result<(), String> {
    let mut first: Option<SimReport> = None;
    for run in 0..runs {
        let report = run_sim(scenario)?;
        if let Some(reference) = &first {
            if report.digest() != reference.digest() {
                return Err(format!(
                    "NOT DETERMINISTIC: run {} digest {:016x} != run 0 digest {:016x}",
                    run,
                    report.digest(),
                    reference.digest()
                ));
            }
        } else {
            first = Some(report);
        }
    }
    let report = first.expect("at least one run");
    if print_log {
        println!("{}", report.log.render());
    }
    println!(
        "{:<24} seed={:<4} digest={:016x} runs={runs} events={} submitted={} ok={} err={} \
         hops={} exchanges={} leases={} [{}]",
        report.scenario,
        report.seed,
        report.digest(),
        report.log.len(),
        report.metrics.submitted,
        report.metrics.settled_ok,
        report.metrics.settled_err,
        report.metrics.hops,
        report.metrics.gossip_exchanges,
        report.metrics.leases_granted,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    if !report.passed() {
        for violation in &report.violations {
            eprintln!("  violation: {violation}");
        }
        return Err(format!("{} invariant violations", report.violations.len()));
    }
    Ok(())
}

fn live(args: &[String]) -> ExitCode {
    let scenario = match load(args) {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("chaos live: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_port = match opt(args, "--base-port").map(|p| p.parse()).transpose() {
        Ok(port) => port.unwrap_or(7600),
        Err(e) => {
            eprintln!("chaos live: --base-port: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut options = match opt(args, "--ypd") {
        Some(ypd) => LiveOptions::external(ypd.into(), base_port),
        None => LiveOptions::in_process(base_port),
    };
    if let Some(scale) = opt(args, "--time-scale") {
        match scale.parse::<f64>() {
            Ok(scale) if scale > 0.0 => options.time_scale = scale,
            Ok(_) | Err(_) => {
                eprintln!("chaos live: --time-scale must be a positive number");
                return ExitCode::FAILURE;
            }
        }
    }
    match run_live(&scenario, &options) {
        Ok(report) => {
            for event in &report.events {
                println!("{event}");
            }
            println!(
                "{:<24} submitted={} ok={} refused={} released={} reclaimed={} vanished={} [{}]",
                report.scenario,
                report.submitted,
                report.succeeded,
                report.failed,
                report.released,
                report.reclaimed,
                report.vanished,
                if report.passed() { "PASS" } else { "FAIL" }
            );
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                for violation in &report.violations {
                    eprintln!("  violation: {violation}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("chaos live: {e}");
            ExitCode::FAILURE
        }
    }
}
