//! # actyp-workload — workload generation for the ActYP experiments
//!
//! The paper's design point is an academic user base: "the goal was to
//! accommodate the needs of the relatively few specialized jobs without
//! compromising the turn-around time for the large numbers of jobs with
//! run-times in the range of a few seconds" (Section 8), illustrated by the
//! distribution of measured CPU times of 236,222 PUNCH runs (Figure 9).
//!
//! * [`cputime`] — the heavy-tailed CPU-time generator used to reproduce
//!   Figure 9 and to drive job-length-aware experiments.
//! * [`clients`] — client populations: closed-loop clients that continuously
//!   send queries (the paper's controlled experiments) and open Poisson
//!   arrivals (production-like load).
//! * [`hotspot`] — the "large class working on an assignment" scenario: a
//!   burst of users requesting resources with identical specifications.
//! * [`trace`] — recording of per-request observations and CSV rendering for
//!   the benchmark harness.

pub mod clients;
pub mod cputime;
pub mod hotspot;
pub mod trace;

pub use clients::{ArrivalProcess, ClientPopulation};
pub use cputime::{CpuTimeDistribution, CpuTimeSample};
pub use hotspot::{ClassAssignment, HotspotBurst};
pub use trace::{Trace, TraceRecord};
