//! Client populations.
//!
//! The controlled experiments of Section 7 use closed-loop clients:
//! "clients continuously send queries to the ActYP service".  Production
//! load is better described by an open arrival process.  Both are provided;
//! they generate *arrival plans* (per-client request counts and, for open
//! arrivals, absolute submission times) that the simulation and the live
//! examples consume.

use actyp_simnet::{Rng, SimDuration, SimTime};

/// How requests arrive at the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: each client issues its next request as soon as the
    /// previous reply arrives, plus an optional think time.
    ClosedLoop {
        /// Think time between reply and next request.
        think_time: SimDuration,
    },
    /// Open arrivals: requests arrive according to a Poisson process with
    /// the given rate, independent of response times.
    Poisson {
        /// Mean arrivals per second.
        rate_per_second: f64,
    },
}

/// A population of clients and its arrival behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPopulation {
    /// Number of clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Arrival behaviour.
    pub arrivals: ArrivalProcess,
}

impl ClientPopulation {
    /// The paper's controlled-experiment population: closed-loop clients
    /// with negligible think time.
    pub fn closed_loop(clients: usize, requests_per_client: usize) -> Self {
        ClientPopulation {
            clients,
            requests_per_client,
            arrivals: ArrivalProcess::ClosedLoop {
                think_time: SimDuration::from_millis(5),
            },
        }
    }

    /// An open population submitting at `rate_per_second` in aggregate.
    pub fn open(clients: usize, requests_per_client: usize, rate_per_second: f64) -> Self {
        ClientPopulation {
            clients,
            requests_per_client,
            arrivals: ArrivalProcess::Poisson { rate_per_second },
        }
    }

    /// Total number of requests the population will issue.
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }

    /// For open arrivals, generates the absolute submission times of every
    /// request (sorted).  Closed-loop populations return only the initial
    /// per-client start jitter, because subsequent arrivals depend on
    /// response times.
    pub fn arrival_times(&self, rng: &mut Rng) -> Vec<SimTime> {
        match &self.arrivals {
            ArrivalProcess::ClosedLoop { .. } => (0..self.clients)
                .map(|_| SimTime::ZERO + SimDuration::from_micros(rng.below(500)))
                .collect(),
            ArrivalProcess::Poisson { rate_per_second } => {
                let mut times = Vec::with_capacity(self.total_requests());
                let mut now = 0.0f64;
                let mean_gap = if *rate_per_second > 0.0 {
                    1.0 / rate_per_second
                } else {
                    1.0
                };
                for _ in 0..self.total_requests() {
                    now += rng.exponential(mean_gap);
                    times.push(SimTime::ZERO + SimDuration::from_secs_f64(now));
                }
                times
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_population_counts() {
        let p = ClientPopulation::closed_loop(16, 25);
        assert_eq!(p.total_requests(), 400);
        let mut rng = Rng::new(1);
        let starts = p.arrival_times(&mut rng);
        assert_eq!(starts.len(), 16);
        assert!(starts.iter().all(|t| t.as_nanos() < 500_000));
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_match_rate() {
        let p = ClientPopulation::open(1, 20_000, 50.0);
        let mut rng = Rng::new(2);
        let times = p.arrival_times(&mut rng);
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span = times.last().unwrap().as_secs_f64();
        let rate = times.len() as f64 / span;
        assert!((rate - 50.0).abs() < 2.0, "observed rate {rate}");
    }

    #[test]
    fn zero_rate_poisson_still_terminates() {
        let p = ClientPopulation::open(1, 10, 0.0);
        let mut rng = Rng::new(3);
        assert_eq!(p.arrival_times(&mut rng).len(), 10);
    }

    #[test]
    fn arrival_generation_is_deterministic() {
        let p = ClientPopulation::open(2, 100, 10.0);
        let a = p.arrival_times(&mut Rng::new(9));
        let b = p.arrival_times(&mut Rng::new(9));
        assert_eq!(a, b);
    }
}
