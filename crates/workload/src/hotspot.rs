//! Hot-spot bursts: "a large class is working on a lab or homework
//! assignment".
//!
//! The paper identifies two triggers for localized hot spots: large
//! homogeneous resource sets collapsing into one pool, and large numbers of
//! users requesting resources with the same specifications.  This module
//! models the second: a class assignment in which every student submits the
//! same tool invocation during a short window, optionally mixed with
//! background traffic spread over other tools.

use actyp_appmgmt::{compose_query, HardwareRequirements, KnowledgeBase, PerformanceModel};
use actyp_query::Query;
use actyp_simnet::{Rng, SimDuration, SimTime};

/// The description of one class assignment burst.
#[derive(Debug, Clone)]
pub struct ClassAssignment {
    /// Tool every student runs.
    pub tool_command: String,
    /// Number of students.
    pub students: usize,
    /// Length of the submission window.
    pub window: SimDuration,
    /// Access group of the class.
    pub access_group: String,
}

impl ClassAssignment {
    /// The scenario the paper sketches: a large undergraduate class running
    /// the same SPICE deck within a lab session.
    pub fn spice_lab(students: usize) -> Self {
        ClassAssignment {
            tool_command: "spice nodes=300 timesteps=2000 arch=sun".to_string(),
            students,
            window: SimDuration::from_secs(600),
            access_group: "ece-students".to_string(),
        }
    }
}

/// One submission produced by a burst: when, by whom, and the query.
#[derive(Debug, Clone)]
pub struct HotspotBurst {
    /// Submission time of each student, sorted.
    pub submissions: Vec<(SimTime, String, Query)>,
}

impl HotspotBurst {
    /// Generates the burst: every student submits the same query (identical
    /// specifications ⇒ identical pool name, which is exactly what creates
    /// the hot spot) at a uniformly random point in the window.
    pub fn generate(assignment: &ClassAssignment, rng: &mut Rng) -> Self {
        let knowledge = KnowledgeBase::punch_defaults();
        let model = PerformanceModel::new();
        let invocation = actyp_appmgmt::parse_invocation(&assignment.tool_command, &knowledge)
            .expect("class assignment uses a known tool");
        let tool = knowledge.tool(&invocation.tool).expect("tool exists");
        let algorithm = tool
            .select_algorithm(invocation.min_accuracy)
            .expect("tool has algorithms");
        let estimate = model.estimate(tool, &invocation, algorithm);
        let requirements = HardwareRequirements::derive(tool, &invocation, &estimate);

        let mut submissions: Vec<(SimTime, String, Query)> = (0..assignment.students)
            .map(|i| {
                let offset =
                    SimDuration::from_nanos(rng.below(assignment.window.as_nanos().max(1)));
                let login = format!("student{i:03}");
                let query =
                    compose_query(&requirements, &estimate, &login, &assignment.access_group);
                (SimTime::ZERO + offset, login, query)
            })
            .collect();
        submissions.sort_by_key(|(t, _, _)| *t);
        HotspotBurst { submissions }
    }

    /// Number of submissions in the burst.
    pub fn len(&self) -> usize {
        self.submissions.len()
    }

    /// Whether the burst is empty.
    pub fn is_empty(&self) -> bool {
        self.submissions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_query::PoolName;

    #[test]
    fn burst_produces_one_submission_per_student() {
        let mut rng = Rng::new(4);
        let burst = HotspotBurst::generate(&ClassAssignment::spice_lab(40), &mut rng);
        assert_eq!(burst.len(), 40);
        assert!(!burst.is_empty());
        // Sorted by submission time and inside the window.
        assert!(burst.submissions.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(burst
            .submissions
            .iter()
            .all(|(t, _, _)| t.as_secs_f64() <= 600.0));
    }

    #[test]
    fn every_submission_maps_to_the_same_pool() {
        let mut rng = Rng::new(5);
        let burst = HotspotBurst::generate(&ClassAssignment::spice_lab(25), &mut rng);
        let names: std::collections::HashSet<String> = burst
            .submissions
            .iter()
            .map(|(_, _, q)| PoolName::from_query(&q.decompose(4).remove(0)).full())
            .collect();
        assert_eq!(
            names.len(),
            1,
            "identical specs must hit one pool: {names:?}"
        );
    }

    #[test]
    fn logins_are_distinct_but_group_is_shared() {
        let mut rng = Rng::new(6);
        let burst = HotspotBurst::generate(&ClassAssignment::spice_lab(10), &mut rng);
        let logins: std::collections::HashSet<&String> =
            burst.submissions.iter().map(|(_, l, _)| l).collect();
        assert_eq!(logins.len(), 10);
        for (_, _, q) in &burst.submissions {
            let basic = q.decompose(1).remove(0);
            assert_eq!(basic.access_group(), Some("ece-students"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = HotspotBurst::generate(&ClassAssignment::spice_lab(15), &mut Rng::new(7));
        let b = HotspotBurst::generate(&ClassAssignment::spice_lab(15), &mut Rng::new(7));
        let ta: Vec<_> = a
            .submissions
            .iter()
            .map(|(t, l, _)| (*t, l.clone()))
            .collect();
        let tb: Vec<_> = b
            .submissions
            .iter()
            .map(|(t, l, _)| (*t, l.clone()))
            .collect();
        assert_eq!(ta, tb);
    }
}
