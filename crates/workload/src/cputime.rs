//! The PUNCH CPU-time distribution (Figure 9).
//!
//! Figure 9 plots the distribution of measured CPU times for 236,222 PUNCH
//! runs: the mass sits at a few seconds (the Y axis is truncated at 19,756
//! runs for the fullest one-second bin), while the tail extends beyond 10⁶
//! seconds.  We model that shape as a mixture: a lognormal body describing
//! the interactive/short simulation runs and a Pareto tail describing the
//! long batch computations.  The generator exists so the same code paths the
//! production system exercised (job-length-aware scheduling, shared-account
//! fast paths) can be driven with realistic inputs.

use actyp_simnet::{Histogram, Rng};

/// One sampled run length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTimeSample {
    /// CPU seconds on the reference machine.
    pub cpu_seconds: f64,
    /// Whether the sample came from the heavy tail (long batch job).
    pub from_tail: bool,
}

/// The mixture distribution.
#[derive(Debug, Clone)]
pub struct CpuTimeDistribution {
    /// Lognormal `mu` of the body (log of seconds).
    pub body_mu: f64,
    /// Lognormal `sigma` of the body.
    pub body_sigma: f64,
    /// Probability that a run comes from the Pareto tail.
    pub tail_probability: f64,
    /// Pareto scale (minimum tail run length, seconds).
    pub tail_scale: f64,
    /// Pareto shape (smaller means heavier tail).
    pub tail_shape: f64,
    /// Hard cap applied to samples, matching the >10⁶-second extent the
    /// paper reports (0 disables the cap).
    pub cap_seconds: f64,
}

impl Default for CpuTimeDistribution {
    fn default() -> Self {
        Self::punch()
    }
}

impl CpuTimeDistribution {
    /// Parameters fitted by eye to Figure 9: a mode of a few seconds, a
    /// median well under a minute, and a tail reaching past 10⁶ seconds.
    pub fn punch() -> Self {
        CpuTimeDistribution {
            body_mu: 1.6, // e^1.6 ≈ 5 s median for the body
            body_sigma: 1.4,
            tail_probability: 0.015,
            tail_scale: 600.0,
            tail_shape: 0.9,
            cap_seconds: 3.0e6,
        }
    }

    /// Draws one run length.
    pub fn sample(&self, rng: &mut Rng) -> CpuTimeSample {
        let from_tail = rng.chance(self.tail_probability);
        let mut cpu_seconds = if from_tail {
            self.tail_scale.max(1e-3) * rng.pareto(1.0, self.tail_shape.max(0.05))
        } else {
            rng.lognormal(self.body_mu, self.body_sigma)
        };
        if self.cap_seconds > 0.0 {
            cpu_seconds = cpu_seconds.min(self.cap_seconds);
        }
        CpuTimeSample {
            cpu_seconds,
            from_tail,
        }
    }

    /// Draws `n` run lengths.
    pub fn sample_many(&self, rng: &mut Rng, n: usize) -> Vec<CpuTimeSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Builds the Figure 9 histogram: one-second bins over `[0, bins)`
    /// seconds plus an overflow count, from `n` sampled runs.
    pub fn histogram(&self, rng: &mut Rng, n: usize, bins: usize) -> Histogram {
        let mut histogram = Histogram::new(1.0, bins);
        for _ in 0..n {
            histogram.record(self.sample(rng).cpu_seconds);
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<CpuTimeSample> {
        let mut rng = Rng::new(0xF19);
        CpuTimeDistribution::punch().sample_many(&mut rng, n)
    }

    #[test]
    fn samples_are_positive_and_capped() {
        let dist = CpuTimeDistribution::punch();
        for s in samples(50_000) {
            assert!(s.cpu_seconds > 0.0);
            assert!(s.cpu_seconds <= dist.cap_seconds);
        }
    }

    #[test]
    fn most_runs_are_short() {
        let xs = samples(100_000);
        let under_100s = xs.iter().filter(|s| s.cpu_seconds < 100.0).count();
        let frac = under_100s as f64 / xs.len() as f64;
        assert!(frac > 0.85, "short-job fraction {frac} should dominate");
    }

    #[test]
    fn the_tail_reaches_very_long_runs() {
        let xs = samples(200_000);
        let beyond_1e5 = xs.iter().filter(|s| s.cpu_seconds > 1e5).count();
        assert!(
            beyond_1e5 > 0,
            "a production-size sample must contain huge runs"
        );
    }

    #[test]
    fn distribution_is_right_skewed() {
        let xs = samples(100_000);
        let mean = xs.iter().map(|s| s.cpu_seconds).sum::<f64>() / xs.len() as f64;
        let mut sorted: Vec<f64> = xs.iter().map(|s| s.cpu_seconds).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > 3.0 * median,
            "mean {mean} must dwarf median {median} for a Figure-9-like shape"
        );
    }

    #[test]
    fn tail_probability_is_respected() {
        let xs = samples(100_000);
        let tail = xs.iter().filter(|s| s.from_tail).count() as f64 / xs.len() as f64;
        assert!((tail - 0.015).abs() < 0.004, "tail fraction {tail}");
    }

    #[test]
    fn histogram_mode_is_in_the_first_seconds() {
        let mut rng = Rng::new(7);
        let h = CpuTimeDistribution::punch().histogram(&mut rng, 100_000, 1_000);
        let mode = h.mode_bin().unwrap();
        assert!(
            mode < 10,
            "mode bin {mode} should be within the first ten seconds"
        );
        assert!(
            h.overflow() > 0,
            "some runs exceed the 1,000-second plot range"
        );
        assert_eq!(h.total(), 100_000);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = CpuTimeDistribution::punch();
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }
}
