//! Per-request traces and CSV rendering.
//!
//! The benchmark harness records one [`TraceRecord`] per simulated or live
//! request and renders figure series as CSV so the paper's plots can be
//! regenerated with any plotting tool.

use std::fmt::Write as _;

/// One observed request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Submission time, seconds from experiment start.
    pub submitted_at: f64,
    /// Response time in seconds.
    pub response_seconds: f64,
    /// Number of machines the scheduling process examined.
    pub examined: usize,
    /// Whether the request obtained a machine.
    pub succeeded: bool,
    /// Label of the experiment configuration (e.g. "pools=8").
    pub label: String,
}

/// A collection of trace records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Mean response time over all records (zero when empty).
    pub fn mean_response(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.response_seconds).sum::<f64>() / self.records.len() as f64
    }

    /// Fraction of successful requests (1.0 when empty).
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.succeeded).count() as f64 / self.records.len() as f64
    }

    /// Renders the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,submitted_at,response_seconds,examined,succeeded\n");
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{},{}",
                r.label, r.submitted_at, r.response_seconds, r.examined, r.succeeded
            );
        }
        out
    }
}

/// Renders a figure series — `(x, one y per named column)` rows — as CSV.
/// This is the format every `fig*` binary prints.
pub fn series_csv(x_name: &str, columns: &[&str], rows: &[(f64, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_name}");
    for c in columns {
        let _ = write!(out, ",{c}");
    }
    let _ = writeln!(out);
    for (x, ys) in rows {
        let _ = write!(out, "{x}");
        for y in ys {
            let _ = write!(out, ",{y:.6}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, response: f64, ok: bool) -> TraceRecord {
        TraceRecord {
            submitted_at: 0.5,
            response_seconds: response,
            examined: 100,
            succeeded: ok,
            label: label.to_string(),
        }
    }

    #[test]
    fn trace_statistics() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.mean_response(), 0.0);
        assert_eq!(trace.success_rate(), 1.0);
        trace.push(record("a", 0.2, true));
        trace.push(record("a", 0.4, false));
        assert_eq!(trace.len(), 2);
        assert!((trace.mean_response() - 0.3).abs() < 1e-12);
        assert!((trace.success_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let mut trace = Trace::new();
        trace.push(record("pools=8", 0.25, true));
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("label,"));
        assert!(lines[1].starts_with("pools=8,"));
        assert!(lines[1].ends_with("true"));
    }

    #[test]
    fn series_csv_renders_columns() {
        let csv = series_csv(
            "pools",
            &["clients=8", "clients=16"],
            &[(2.0, vec![1.2, 1.4]), (4.0, vec![0.7, 0.9])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "pools,clients=8,clients=16");
        assert!(lines[1].starts_with("2,1.2"));
        assert_eq!(lines.len(), 3);
    }
}
