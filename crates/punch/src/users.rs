//! User accounts and authorisation.
//!
//! "The network desktop first verifies that the user is authorized to run
//! the selected application" (Section 2).  Users carry a login, an access
//! group (used by machine user-group lists and usage policies), a storage
//! provider location, and the set of tools they may run.

use std::collections::BTreeMap;

/// A PUNCH user account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name.
    pub login: String,
    /// Access group (e.g. `ece`, `ece-students`, `public`).
    pub access_group: String,
    /// Location of the user's storage service provider.
    pub storage_provider: String,
    /// Tools the user is authorised to run; empty means "any tool".
    pub authorized_tools: Vec<String>,
}

impl User {
    /// Creates a user authorised for every tool.
    pub fn new(login: &str, access_group: &str, storage_provider: &str) -> Self {
        User {
            login: login.to_string(),
            access_group: access_group.to_string(),
            storage_provider: storage_provider.to_string(),
            authorized_tools: Vec::new(),
        }
    }

    /// Restricts the user to the given tools (builder style).
    pub fn with_tools<I, S>(mut self, tools: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.authorized_tools = tools.into_iter().map(Into::into).collect();
        self
    }

    /// Whether the user may run `tool`.
    pub fn may_run(&self, tool: &str) -> bool {
        self.authorized_tools.is_empty()
            || self
                .authorized_tools
                .iter()
                .any(|t| t.eq_ignore_ascii_case(tool))
    }
}

/// Why an authorisation check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthorizationError {
    /// The login does not exist.
    UnknownUser(String),
    /// The user exists but may not run the requested tool.
    ToolNotAuthorized {
        /// The login.
        login: String,
        /// The requested tool.
        tool: String,
    },
}

impl std::fmt::Display for AuthorizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthorizationError::UnknownUser(login) => write!(f, "unknown user `{login}`"),
            AuthorizationError::ToolNotAuthorized { login, tool } => {
                write!(f, "user `{login}` is not authorized to run `{tool}`")
            }
        }
    }
}

impl std::error::Error for AuthorizationError {}

/// The registry of PUNCH accounts.
#[derive(Debug, Clone, Default)]
pub struct UserRegistry {
    users: BTreeMap<String, User>,
}

impl UserRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a user.
    pub fn register(&mut self, user: User) {
        self.users.insert(user.login.clone(), user);
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Looks a user up by login.
    pub fn user(&self, login: &str) -> Option<&User> {
        self.users.get(login)
    }

    /// Authorises `login` to run `tool`, returning the user on success.
    pub fn authorize(&self, login: &str, tool: &str) -> Result<&User, AuthorizationError> {
        let user = self
            .users
            .get(login)
            .ok_or_else(|| AuthorizationError::UnknownUser(login.to_string()))?;
        if user.may_run(tool) {
            Ok(user)
        } else {
            Err(AuthorizationError::ToolNotAuthorized {
                login: login.to_string(),
                tool: tool.to_string(),
            })
        }
    }

    /// A small demo population used by examples and tests.
    pub fn demo() -> Self {
        let mut registry = UserRegistry::new();
        registry.register(User::new("kapadia", "ece", "storage.purdue.edu"));
        registry.register(User::new("royo", "upc", "storage.upc.es"));
        registry.register(
            User::new("student001", "ece-students", "storage.purdue.edu")
                .with_tools(["spice", "tsuprem4"]),
        );
        registry.register(User::new("guest", "public", "storage.purdue.edu").with_tools(["spice"]));
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_registry_contains_expected_users() {
        let registry = UserRegistry::demo();
        assert!(registry.len() >= 4);
        assert!(!registry.is_empty());
        assert!(registry.user("kapadia").is_some());
        assert!(registry.user("nobody").is_none());
    }

    #[test]
    fn unrestricted_users_may_run_anything() {
        let registry = UserRegistry::demo();
        assert!(registry.authorize("kapadia", "minimos").is_ok());
        assert!(registry.authorize("kapadia", "spice").is_ok());
    }

    #[test]
    fn restricted_users_are_limited_to_their_tools() {
        let registry = UserRegistry::demo();
        assert!(registry.authorize("student001", "spice").is_ok());
        assert_eq!(
            registry.authorize("student001", "minimos").unwrap_err(),
            AuthorizationError::ToolNotAuthorized {
                login: "student001".to_string(),
                tool: "minimos".to_string(),
            }
        );
    }

    #[test]
    fn unknown_users_are_rejected() {
        let registry = UserRegistry::demo();
        assert_eq!(
            registry.authorize("mallory", "spice").unwrap_err(),
            AuthorizationError::UnknownUser("mallory".to_string())
        );
    }

    #[test]
    fn tool_authorisation_is_case_insensitive() {
        let user = User::new("x", "g", "s").with_tools(["SPICE"]);
        assert!(user.may_run("spice"));
        assert!(!user.may_run("matlab"));
    }

    #[test]
    fn registration_replaces_accounts() {
        let mut registry = UserRegistry::demo();
        let before = registry.len();
        registry.register(User::new("kapadia", "admin", "storage.purdue.edu"));
        assert_eq!(registry.len(), before);
        assert_eq!(registry.user("kapadia").unwrap().access_group, "admin");
    }
}
