//! # actyp-punch — the PUNCH network desktop
//!
//! The active yellow pages service exists to serve the PUNCH network
//! computer (Section 2): users connect to a Web-accessible network desktop,
//! click on an application, and the desktop assembles the computing
//! environment for the run.  This crate implements that surrounding system
//! so the pipeline can be exercised end to end, following the six events of
//! Figure 1:
//!
//! 1. the user submits a command through the desktop ([`desktop`]);
//! 2. the desktop forwards tool-execution requests to the application
//!    management component (`actyp-appmgmt`);
//! 3. the generated query goes to the ActYP pipeline (`actyp-pipeline`);
//! 4. pool managers and resource pools allocate a machine;
//! 5. the virtual file system mounts the application and data disks
//!    ([`vfs`]) and the execution unit starts the run ([`execution`]);
//! 6. on completion the desktop unmounts and releases the shadow account
//!    and resources.
//!
//! * [`users`] — user accounts, access groups and authorisation checks.
//! * [`vfs`] — the PUNCH virtual-file-system mount manager (mount/unmount of
//!   application and data disks onto the selected machine).
//! * [`execution`] — execution units and run sessions (remote display is
//!   represented by a session handle).
//! * [`desktop`] — the network desktop orchestrating the whole lifecycle.

pub mod desktop;
pub mod execution;
pub mod users;
pub mod vfs;

pub use desktop::{NetworkDesktop, RunError, RunHandle, RunOutcome};
pub use execution::{ExecutionUnit, RunSession, SessionState};
pub use users::{AuthorizationError, User, UserRegistry};
pub use vfs::{MountError, MountManager, MountRecord};
