//! The PUNCH virtual file system (mount manager).
//!
//! "Then, the virtual file system service mounts the application and data
//! disks on to the selected machine.  […]  Once the run is complete, the
//! virtual file system service unmounts the application and data disks"
//! (Section 2).  Every machine record carries the TCP port of its PVFS
//! mount manager (field 15); this module tracks the mounts the desktop
//! establishes through those managers.

use std::collections::BTreeMap;

use actyp_grid::MachineId;

/// One mounted disk on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountRecord {
    /// The machine the disk is mounted on.
    pub machine: MachineId,
    /// What is mounted (`application:<tool>` or `data:<provider>/<login>`).
    pub source: String,
    /// Mount point on the machine.
    pub mount_point: String,
    /// Access key of the session the mount belongs to.
    pub session_key: String,
}

/// Why a mount operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MountError {
    /// The same source is already mounted for this session.
    AlreadyMounted(String),
    /// Unmount of something that is not mounted.
    NotMounted(String),
}

impl std::fmt::Display for MountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MountError::AlreadyMounted(s) => write!(f, "`{s}` is already mounted"),
            MountError::NotMounted(s) => write!(f, "`{s}` is not mounted"),
        }
    }
}

impl std::error::Error for MountError {}

/// The mount manager bookkeeping for one deployment.
#[derive(Debug, Clone, Default)]
pub struct MountManager {
    mounts: BTreeMap<(String, String), MountRecord>,
    mounted_total: u64,
    unmounted_total: u64,
}

impl MountManager {
    /// An empty mount manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mounts `source` on `machine` for the session identified by
    /// `session_key`.
    pub fn mount(
        &mut self,
        machine: MachineId,
        session_key: &str,
        source: &str,
    ) -> Result<MountRecord, MountError> {
        let key = (session_key.to_string(), source.to_string());
        if self.mounts.contains_key(&key) {
            return Err(MountError::AlreadyMounted(source.to_string()));
        }
        let record = MountRecord {
            machine,
            source: source.to_string(),
            mount_point: format!("/punch/{session_key}/{}", source.replace([':', '/'], "_")),
            session_key: session_key.to_string(),
        };
        self.mounts.insert(key, record.clone());
        self.mounted_total += 1;
        Ok(record)
    }

    /// Unmounts `source` for the session.
    pub fn unmount(&mut self, session_key: &str, source: &str) -> Result<(), MountError> {
        match self
            .mounts
            .remove(&(session_key.to_string(), source.to_string()))
        {
            Some(_) => {
                self.unmounted_total += 1;
                Ok(())
            }
            None => Err(MountError::NotMounted(source.to_string())),
        }
    }

    /// Unmounts everything belonging to a session; returns how many mounts
    /// were removed.
    pub fn unmount_session(&mut self, session_key: &str) -> usize {
        let keys: Vec<_> = self
            .mounts
            .keys()
            .filter(|(s, _)| s == session_key)
            .cloned()
            .collect();
        for key in &keys {
            self.mounts.remove(key);
            self.unmounted_total += 1;
        }
        keys.len()
    }

    /// Active mounts for a session.
    pub fn session_mounts(&self, session_key: &str) -> Vec<&MountRecord> {
        self.mounts
            .values()
            .filter(|m| m.session_key == session_key)
            .collect()
    }

    /// Number of active mounts across all sessions.
    pub fn active(&self) -> usize {
        self.mounts.len()
    }

    /// Total mounts performed over the manager's lifetime.
    pub fn mounted_total(&self) -> u64 {
        self.mounted_total
    }

    /// Total unmounts performed over the manager's lifetime.
    pub fn unmounted_total(&self) -> u64 {
        self.unmounted_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mount_and_unmount_cycle() {
        let mut vfs = MountManager::new();
        let m = vfs
            .mount(MachineId(3), "key-1", "application:spice")
            .unwrap();
        assert_eq!(m.machine, MachineId(3));
        assert!(m.mount_point.starts_with("/punch/key-1/"));
        assert_eq!(vfs.active(), 1);
        vfs.unmount("key-1", "application:spice").unwrap();
        assert_eq!(vfs.active(), 0);
        assert_eq!(vfs.mounted_total(), 1);
        assert_eq!(vfs.unmounted_total(), 1);
    }

    #[test]
    fn double_mount_is_rejected() {
        let mut vfs = MountManager::new();
        vfs.mount(MachineId(1), "k", "data:storage/kapadia")
            .unwrap();
        assert_eq!(
            vfs.mount(MachineId(1), "k", "data:storage/kapadia")
                .unwrap_err(),
            MountError::AlreadyMounted("data:storage/kapadia".to_string())
        );
    }

    #[test]
    fn unmount_of_unknown_source_is_rejected() {
        let mut vfs = MountManager::new();
        assert_eq!(
            vfs.unmount("k", "application:spice").unwrap_err(),
            MountError::NotMounted("application:spice".to_string())
        );
    }

    #[test]
    fn sessions_are_isolated() {
        let mut vfs = MountManager::new();
        vfs.mount(MachineId(1), "a", "application:spice").unwrap();
        vfs.mount(MachineId(1), "b", "application:spice").unwrap();
        vfs.mount(MachineId(1), "b", "data:storage/royo").unwrap();
        assert_eq!(vfs.session_mounts("a").len(), 1);
        assert_eq!(vfs.session_mounts("b").len(), 2);
        assert_eq!(vfs.unmount_session("b"), 2);
        assert_eq!(vfs.active(), 1);
        assert_eq!(vfs.unmount_session("missing"), 0);
    }
}
