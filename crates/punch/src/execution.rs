//! Execution units and run sessions.
//!
//! Every machine runs a PUNCH *execution unit* daemon listening on the port
//! recorded in field 14 of the resource database.  The desktop contacts it
//! with the session access key to launch the application; for tools with a
//! graphical interface the display is routed back to the user's browser via
//! a remote-display session (VNC in the production system).  This module
//! models the daemon far enough to track run state transitions and elapsed
//! CPU time.

use actyp_grid::MachineId;
use actyp_simnet::{SimDuration, SimTime};

/// The lifecycle state of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Accepted by the execution unit but not yet started.
    Pending,
    /// Running on the machine.
    Running,
    /// Finished successfully.
    Completed,
    /// Terminated by the user or by a failure.
    Aborted,
}

/// One run session tracked by an execution unit.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSession {
    /// The machine the run executes on.
    pub machine: MachineId,
    /// The tool being run.
    pub tool: String,
    /// Session access key (shared with the mount manager and the desktop).
    pub session_key: String,
    /// Whether the display is routed to the user's browser.
    pub remote_display: bool,
    /// Current state.
    pub state: SessionState,
    /// When the run started, if it has.
    pub started_at: Option<SimTime>,
    /// CPU time consumed so far (reference-machine seconds).
    pub cpu_seconds: f64,
}

/// The execution-unit daemon of one machine.
#[derive(Debug, Clone)]
pub struct ExecutionUnit {
    machine: MachineId,
    port: u16,
    sessions: Vec<RunSession>,
}

impl ExecutionUnit {
    /// Creates the execution unit for a machine.
    pub fn new(machine: MachineId, port: u16) -> Self {
        ExecutionUnit {
            machine,
            port,
            sessions: Vec::new(),
        }
    }

    /// The TCP port the unit listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Accepts a run, returning its index within the unit.
    pub fn accept(&mut self, tool: &str, session_key: &str, remote_display: bool) -> usize {
        self.sessions.push(RunSession {
            machine: self.machine,
            tool: tool.to_string(),
            session_key: session_key.to_string(),
            remote_display,
            state: SessionState::Pending,
            started_at: None,
            cpu_seconds: 0.0,
        });
        self.sessions.len() - 1
    }

    /// Starts a pending run at virtual time `now`.  Returns `false` if the
    /// run is not pending.
    pub fn start(&mut self, index: usize, now: SimTime) -> bool {
        match self.sessions.get_mut(index) {
            Some(s) if s.state == SessionState::Pending => {
                s.state = SessionState::Running;
                s.started_at = Some(now);
                true
            }
            _ => false,
        }
    }

    /// Completes a running run, crediting it with `cpu` of compute time.
    pub fn complete(&mut self, index: usize, cpu: SimDuration) -> bool {
        match self.sessions.get_mut(index) {
            Some(s) if s.state == SessionState::Running => {
                s.state = SessionState::Completed;
                s.cpu_seconds = cpu.as_secs_f64();
                true
            }
            _ => false,
        }
    }

    /// Aborts a pending or running run.
    pub fn abort(&mut self, index: usize) -> bool {
        match self.sessions.get_mut(index) {
            Some(s) if s.state == SessionState::Pending || s.state == SessionState::Running => {
                s.state = SessionState::Aborted;
                true
            }
            _ => false,
        }
    }

    /// The session at `index`, if any.
    pub fn session(&self, index: usize) -> Option<&RunSession> {
        self.sessions.get(index)
    }

    /// Number of sessions in the given state.
    pub fn count(&self, state: SessionState) -> usize {
        self.sessions.iter().filter(|s| s.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ExecutionUnit {
        ExecutionUnit::new(MachineId(7), 7070)
    }

    #[test]
    fn run_lifecycle_happy_path() {
        let mut eu = unit();
        let idx = eu.accept("spice", "key-1", true);
        assert_eq!(eu.session(idx).unwrap().state, SessionState::Pending);
        assert!(eu.start(idx, SimTime::from_nanos(10)));
        assert_eq!(eu.session(idx).unwrap().state, SessionState::Running);
        assert!(eu.complete(idx, SimDuration::from_secs(42)));
        let s = eu.session(idx).unwrap();
        assert_eq!(s.state, SessionState::Completed);
        assert_eq!(s.cpu_seconds, 42.0);
        assert!(s.remote_display);
        assert_eq!(eu.port(), 7070);
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut eu = unit();
        let idx = eu.accept("spice", "key-1", false);
        assert!(
            !eu.complete(idx, SimDuration::from_secs(1)),
            "cannot complete a pending run"
        );
        assert!(eu.start(idx, SimTime::ZERO));
        assert!(!eu.start(idx, SimTime::ZERO), "cannot start twice");
        assert!(eu.complete(idx, SimDuration::from_secs(1)));
        assert!(!eu.abort(idx), "cannot abort a completed run");
        assert!(!eu.start(999, SimTime::ZERO), "unknown index");
    }

    #[test]
    fn abort_works_from_pending_and_running() {
        let mut eu = unit();
        let a = eu.accept("spice", "k1", false);
        let b = eu.accept("spice", "k2", false);
        eu.start(b, SimTime::ZERO);
        assert!(eu.abort(a));
        assert!(eu.abort(b));
        assert_eq!(eu.count(SessionState::Aborted), 2);
    }

    #[test]
    fn counts_by_state() {
        let mut eu = unit();
        for i in 0..5 {
            let idx = eu.accept("minimos", &format!("k{i}"), false);
            if i % 2 == 0 {
                eu.start(idx, SimTime::ZERO);
            }
        }
        assert_eq!(eu.count(SessionState::Running), 3);
        assert_eq!(eu.count(SessionState::Pending), 2);
    }
}
