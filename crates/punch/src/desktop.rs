//! The network desktop: end-to-end run orchestration.
//!
//! [`NetworkDesktop`] glues the whole system together along the event
//! sequence of Figure 1: authorise the user, run the application-management
//! steps of Figure 2 (parse, estimate, rank, derive, compose), hand the
//! query to the ActYP pipeline, and on success mount the application and
//! data disks, start the execution unit and return a [`RunHandle`].
//! Completing (or aborting) the run unmounts the disks and relinquishes the
//! shadow account and resources by releasing the allocation.

use std::collections::HashMap;

use actyp_appmgmt::{compose_query, HardwareRequirements, KnowledgeBase, PerformanceModel};
use actyp_grid::SharedDatabase;
use actyp_pipeline::api::EmbeddedBackend;
use actyp_pipeline::{
    Allocation, AllocationError, PipelineBuilder, PipelineConfig, ResourceManager,
};
use actyp_simnet::{SimDuration, SimTime};

use crate::execution::{ExecutionUnit, SessionState};
use crate::users::{AuthorizationError, UserRegistry};
use crate::vfs::MountManager;

/// Why a run could not be started or completed.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Authorisation failed.
    Authorization(AuthorizationError),
    /// The command could not be parsed / the tool is unknown.
    Invocation(String),
    /// The ActYP pipeline could not allocate resources.
    Allocation(AllocationError),
    /// The referenced run handle is unknown (already completed?).
    UnknownRun,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Authorization(e) => write!(f, "authorization failed: {e}"),
            RunError::Invocation(e) => write!(f, "invalid invocation: {e}"),
            RunError::Allocation(e) => write!(f, "resource allocation failed: {e}"),
            RunError::UnknownRun => write!(f, "unknown run handle"),
        }
    }
}

impl std::error::Error for RunError {}

/// Handle to a run started through the desktop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunHandle(u64);

/// The outcome of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The tool that ran.
    pub tool: String,
    /// Machine the run executed on.
    pub machine_name: String,
    /// CPU time consumed (reference-machine seconds).
    pub cpu_seconds: f64,
    /// Predicted CPU time, for accounting and model calibration.
    pub predicted_cpu_seconds: f64,
}

struct ActiveRun {
    tool: String,
    login: String,
    allocation: Allocation,
    execution_index: usize,
    predicted_cpu: f64,
    predicted_memory: f64,
}

/// The PUNCH network desktop.
pub struct NetworkDesktop {
    users: UserRegistry,
    knowledge: KnowledgeBase,
    model: PerformanceModel,
    manager: EmbeddedBackend,
    vfs: MountManager,
    execution_units: HashMap<actyp_grid::MachineId, ExecutionUnit>,
    runs: HashMap<RunHandle, ActiveRun>,
    next_run: u64,
    clock: SimTime,
}

impl NetworkDesktop {
    /// Builds a desktop over a resource database, with the demo user
    /// population and the default tool knowledge base.
    pub fn new(db: SharedDatabase, pipeline: PipelineConfig) -> Self {
        Self::with_users(db, pipeline, UserRegistry::demo())
    }

    /// Builds a desktop with an explicit user registry.
    pub fn with_users(db: SharedDatabase, pipeline: PipelineConfig, users: UserRegistry) -> Self {
        NetworkDesktop {
            users,
            knowledge: KnowledgeBase::punch_defaults(),
            model: PerformanceModel::new(),
            manager: PipelineBuilder::new()
                .database(db)
                .config(pipeline)
                .build_embedded()
                .expect("a database was provided"),
            vfs: MountManager::new(),
            execution_units: HashMap::new(),
            runs: HashMap::new(),
            next_run: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Access to the underlying resource manager (inspection).  The
    /// desktop drives it through the unified [`ResourceManager`] trait —
    /// the same surface a remote deployment would offer.
    pub fn manager(&self) -> &EmbeddedBackend {
        &self.manager
    }

    /// Access to the mount manager (inspection).
    pub fn mounts(&self) -> &MountManager {
        &self.vfs
    }

    /// Number of runs currently executing.
    pub fn active_runs(&self) -> usize {
        self.runs.len()
    }

    /// Advances the desktop's virtual clock (used by examples that interleave
    /// runs over time).
    pub fn advance_clock(&mut self, by: SimDuration) {
        self.clock += by;
    }

    /// Starts a run: the full Figure 1 sequence up to and including event 6.
    pub fn start_run(&mut self, login: &str, command: &str) -> Result<RunHandle, RunError> {
        // Event 1–2: authorisation and application management.
        let invocation = actyp_appmgmt::parse_invocation(command, &self.knowledge)
            .map_err(|e| RunError::Invocation(e.to_string()))?;
        let user = self
            .users
            .authorize(login, &invocation.tool)
            .map_err(RunError::Authorization)?
            .clone();
        let tool = self
            .knowledge
            .tool(&invocation.tool)
            .expect("parse_invocation guarantees the tool exists")
            .clone();
        let algorithm = tool
            .select_algorithm(invocation.min_accuracy)
            .ok_or_else(|| RunError::Invocation(format!("tool {} has no algorithms", tool.name)))?
            .clone();
        let estimate = self.model.estimate(&tool, &invocation, &algorithm);
        let requirements = HardwareRequirements::derive(&tool, &invocation, &estimate);
        let query = compose_query(&requirements, &estimate, &user.login, &user.access_group);

        // Event 3–6: ActYP allocation.
        let mut allocations = self
            .manager
            .submit_wait(&query)
            .map_err(RunError::Allocation)?;
        let allocation = allocations.remove(0);
        // A composite query may return more than one match under the All
        // policy; the desktop needs a single machine, so surplus goes back.
        for extra in allocations {
            let _ = self.manager.release(&extra);
        }

        // Mount application and data disks.
        let key = allocation.access_key.0.clone();
        let _ = self.vfs.mount(
            allocation.machine,
            &key,
            &format!("application:{}", tool.name),
        );
        let _ = self.vfs.mount(
            allocation.machine,
            &key,
            &format!("data:{}/{}", user.storage_provider, user.login),
        );

        // Start the execution unit session.
        let unit = self
            .execution_units
            .entry(allocation.machine)
            .or_insert_with(|| ExecutionUnit::new(allocation.machine, allocation.execution_port));
        let execution_index = unit.accept(&tool.name, &key, true);
        unit.start(execution_index, self.clock);

        let handle = RunHandle(self.next_run);
        self.next_run += 1;
        self.runs.insert(
            handle,
            ActiveRun {
                tool: tool.name.clone(),
                login: user.login.clone(),
                allocation,
                execution_index,
                predicted_cpu: estimate.cpu_seconds,
                predicted_memory: estimate.memory_mb,
            },
        );
        Ok(handle)
    }

    /// Completes a run: the execution unit records the consumed CPU time,
    /// the disks are unmounted, the model is calibrated with the
    /// observation, and the allocation (machine + shadow account) is
    /// relinquished.
    pub fn complete_run(
        &mut self,
        handle: RunHandle,
        actual_cpu_seconds: f64,
    ) -> Result<RunOutcome, RunError> {
        let run = self.runs.remove(&handle).ok_or(RunError::UnknownRun)?;
        if let Some(unit) = self.execution_units.get_mut(&run.allocation.machine) {
            unit.complete(
                run.execution_index,
                SimDuration::from_secs_f64(actual_cpu_seconds),
            );
        }
        self.vfs.unmount_session(&run.allocation.access_key.0);
        self.model.observe(
            &actyp_appmgmt::ResourceEstimate {
                cpu_seconds: run.predicted_cpu,
                memory_mb: run.predicted_memory,
                algorithm: String::new(),
            },
            actual_cpu_seconds,
            run.predicted_memory,
        );
        self.manager
            .release(&run.allocation)
            .map_err(RunError::Allocation)?;
        Ok(RunOutcome {
            tool: run.tool,
            machine_name: run.allocation.machine_name.clone(),
            cpu_seconds: actual_cpu_seconds,
            predicted_cpu_seconds: run.predicted_cpu,
        })
    }

    /// Aborts a run: the session is marked aborted and everything is
    /// released, but no observation is folded into the model.
    pub fn abort_run(&mut self, handle: RunHandle) -> Result<(), RunError> {
        let run = self.runs.remove(&handle).ok_or(RunError::UnknownRun)?;
        if let Some(unit) = self.execution_units.get_mut(&run.allocation.machine) {
            unit.abort(run.execution_index);
        }
        self.vfs.unmount_session(&run.allocation.access_key.0);
        self.manager
            .release(&run.allocation)
            .map_err(RunError::Allocation)?;
        Ok(())
    }

    /// State of the execution-unit session behind a run handle, if the run
    /// is still active.
    pub fn run_state(&self, handle: RunHandle) -> Option<SessionState> {
        let run = self.runs.get(&handle)?;
        self.execution_units
            .get(&run.allocation.machine)?
            .session(run.execution_index)
            .map(|s| s.state)
    }

    /// Login that owns a run handle, if the run is still active.
    pub fn run_owner(&self, handle: RunHandle) -> Option<&str> {
        self.runs.get(&handle).map(|r| r.login.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, SyntheticFleet};

    fn desktop(machines: usize, seed: u64) -> NetworkDesktop {
        let db = SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
            .generate()
            .into_shared();
        NetworkDesktop::new(db, PipelineConfig::default())
    }

    #[test]
    fn full_run_lifecycle() {
        let mut desk = desktop(300, 1);
        let handle = desk
            .start_run(
                "kapadia",
                "tsuprem4 gridpoints=2000 steps=500 domain=purdue",
            )
            .unwrap();
        assert_eq!(desk.active_runs(), 1);
        assert_eq!(desk.run_state(handle), Some(SessionState::Running));
        assert_eq!(desk.run_owner(handle), Some("kapadia"));
        // Application + data disks are mounted for the session.
        assert_eq!(desk.mounts().active(), 2);

        let outcome = desk.complete_run(handle, 950.0).unwrap();
        assert_eq!(outcome.tool, "tsuprem4");
        assert!(outcome.machine_name.contains("sun"));
        assert_eq!(desk.active_runs(), 0);
        assert_eq!(desk.mounts().active(), 0);
        assert_eq!(desk.manager().stats().releases, 1);
    }

    #[test]
    fn unauthorized_users_cannot_start_runs() {
        let mut desk = desktop(100, 2);
        let err = desk.start_run("guest", "minimos devicesize=2").unwrap_err();
        assert!(matches!(err, RunError::Authorization(_)));
        let err = desk.start_run("mallory", "spice nodes=10").unwrap_err();
        assert!(matches!(err, RunError::Authorization(_)));
        assert_eq!(desk.active_runs(), 0);
    }

    #[test]
    fn unknown_tools_are_invocation_errors() {
        let mut desk = desktop(100, 3);
        let err = desk.start_run("kapadia", "autocad size=2").unwrap_err();
        assert!(matches!(err, RunError::Invocation(_)));
    }

    #[test]
    fn impossible_hardware_requirements_surface_allocation_errors() {
        // Fleet has no machine with 1e7 MB of memory.
        let mut desk = desktop(50, 4);
        let err = desk
            .start_run(
                "kapadia",
                "carrier-transport carriers=5000000000 gridnodes=100000000",
            )
            .unwrap_err();
        assert!(matches!(err, RunError::Allocation(_)));
    }

    #[test]
    fn aborting_releases_everything() {
        let mut desk = desktop(200, 5);
        let handle = desk.start_run("royo", "spice nodes=500 arch=sun").unwrap();
        desk.abort_run(handle).unwrap();
        assert_eq!(desk.active_runs(), 0);
        assert_eq!(desk.mounts().active(), 0);
        assert_eq!(desk.abort_run(handle), Err(RunError::UnknownRun));
    }

    #[test]
    fn repeated_runs_calibrate_the_performance_model() {
        let mut desk = desktop(300, 6);
        let mut predictions = Vec::new();
        for _ in 0..6 {
            let handle = desk
                .start_run("kapadia", "spice nodes=500 timesteps=5000 arch=sun")
                .unwrap();
            let outcome = desk.complete_run(handle, 400.0).unwrap();
            predictions.push(outcome.predicted_cpu_seconds);
        }
        // The model predictions move toward the consistently larger
        // observations run after run.
        assert!(
            predictions.last().unwrap() > predictions.first().unwrap(),
            "predictions {predictions:?} should increase toward the observed 400 s"
        );
    }

    #[test]
    fn concurrent_runs_occupy_distinct_shadow_accounts() {
        let mut desk = desktop(200, 7);
        let a = desk
            .start_run("kapadia", "spice nodes=100 arch=sun")
            .unwrap();
        let b = desk.start_run("royo", "spice nodes=100 arch=sun").unwrap();
        assert_eq!(desk.active_runs(), 2);
        assert_ne!(desk.run_owner(a), desk.run_owner(b));
        desk.complete_run(a, 5.0).unwrap();
        desk.complete_run(b, 5.0).unwrap();
    }
}
