//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the `parking_lot` API the workspace uses — `RwLock` and
//! `Mutex` whose `read`/`write`/`lock` return guards directly instead of a
//! `Result` — on top of `std::sync`.  Lock poisoning is deliberately ignored
//! (a panic while holding the lock does not poison it for later users),
//! matching `parking_lot` semantics.

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader/writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

pub use std::sync::MutexGuard;

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_survives_panic_while_held() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let cloned = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(7);
        assert_eq!(m.into_inner(), vec![7]);
    }
}
