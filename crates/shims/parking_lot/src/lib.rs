//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the `parking_lot` API the workspace uses — `RwLock` and
//! `Mutex` whose `read`/`write`/`lock` return guards directly instead of a
//! `Result` — on top of `std::sync`.  Lock poisoning is deliberately ignored
//! (a panic while holding the lock does not poison it for later users),
//! matching `parking_lot` semantics.

#[cfg(not(feature = "model"))]
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader/writer lock with `parking_lot`'s panic-free guard API.
#[cfg(not(feature = "model"))]
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

#[cfg(not(feature = "model"))]
impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(not(feature = "model"))]
impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(not(feature = "model"))]
pub use std::sync::MutexGuard;

/// Mutex with `parking_lot`'s panic-free guard API.
#[cfg(not(feature = "model"))]
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

#[cfg(not(feature = "model"))]
impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(not(feature = "model"))]
impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

// ---------------------------------------------------------------------------
// Model variant (`--features model`): the same panic-free guard API,
// backed by actyp-model so locks created inside `Explorer::explore` are
// deterministically interleaved.  Locks created anywhere else fall back
// to real `std::sync` internals, so the feature is safe to leave on for
// an entire test binary.  `new` is not `const` under this feature.
// ---------------------------------------------------------------------------

#[cfg(feature = "model")]
pub use model_impl::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model")]
mod model_impl {
    pub use actyp_model::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

    /// Reader/writer lock with `parking_lot`'s panic-free guard API,
    /// model-gated when created inside an exploration.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(actyp_model::sync::RwLock<T>);

    impl<T> RwLock<T> {
        /// Creates a new unlocked `RwLock`.
        pub fn new(value: T) -> Self {
            RwLock(actyp_model::sync::RwLock::new(value))
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap()
        }

        /// Acquires a shared read guard, blocking until available.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read().unwrap()
        }

        /// Acquires an exclusive write guard, blocking until available.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write().unwrap()
        }

        /// Model stand-in for `try_read`: acquires (possibly yielding to
        /// the scheduler) and always succeeds.  The checker explores the
        /// contended interleavings through the blocking acquire instead of
        /// the try-fail fast path, which keeps `try_`-using code explorable
        /// without teaching the model scheduler about non-blocking locks.
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            Some(self.read())
        }

        /// Model stand-in for `try_write`; see [`RwLock::try_read`].
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            Some(self.write())
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap()
        }
    }

    /// Mutex with `parking_lot`'s panic-free guard API, model-gated
    /// when created inside an exploration.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(actyp_model::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new unlocked `Mutex`.
        pub fn new(value: T) -> Self {
            Mutex(actyp_model::sync::Mutex::new(value))
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap()
        }

        /// Acquires the lock, blocking until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap()
        }

        /// Model stand-in for `try_lock`; see [`RwLock::try_read`].
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            Some(self.lock())
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap()
        }
    }
}

/// Bounded-interleaving proofs over the parking_lot-style guards, run
/// by the CI `model-check` job.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::{Mutex, RwLock};
    use actyp_model::{thread, Explorer};
    use std::sync::Arc;

    fn explorer() -> Explorer {
        Explorer {
            max_schedules: 100_000,
            preemption_bound: 2,
            op_budget: 20_000,
        }
    }

    #[test]
    fn mutex_counter_proven() {
        let report = explorer().prove(|| {
            let counter = Arc::new(Mutex::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    thread::spawn(move || {
                        let mut v = counter.lock();
                        let read = *v;
                        *v = read + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.proven());
    }

    #[test]
    fn rwlock_reader_writer_proven() {
        let report = explorer().prove(|| {
            let shared = Arc::new(RwLock::new(1));
            let reader = {
                let shared = shared.clone();
                thread::spawn(move || *shared.read())
            };
            let writer = {
                let shared = shared.clone();
                thread::spawn(move || *shared.write() = 2)
            };
            let seen = reader.join().unwrap();
            writer.join().unwrap();
            // A reader sees the value before or after the write, never
            // a torn intermediate.
            assert!(seen == 1 || seen == 2);
            assert_eq!(*shared.read(), 2);
        });
        assert!(report.proven());
    }

    /// The sharded-directory locking pattern: writers hash to disjoint
    /// shards and never nest shard guards, so every interleaving of
    /// per-shard writes completes and both shards observe their own
    /// writer's value.  This is the shape `ShardedDirectory` relies on —
    /// proving it here is the model-checked counterpart of the static
    /// "shard is a leaf rank" claim in docs/CONCURRENCY.md.
    #[test]
    fn disjoint_shard_writers_proven() {
        let report = explorer().prove(|| {
            let shards = Arc::new([RwLock::new(0u32), RwLock::new(0u32)]);
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let shards = shards.clone();
                    thread::spawn(move || {
                        let shard = &shards[i];
                        *shard.write() = (i as u32) + 1;
                        *shard.read()
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), (i as u32) + 1);
            }
            assert_eq!(*shards[0].read(), 1);
            assert_eq!(*shards[1].read(), 2);
        });
        assert!(report.proven());
    }

    /// A cross-shard reader (the `instance_count` / snapshot shape) locks
    /// shards one at a time — never two guards at once — so it cannot
    /// deadlock against per-shard writers no matter the interleaving.
    #[test]
    fn cross_shard_sweep_against_writers_proven() {
        let report = explorer().prove(|| {
            let shards = Arc::new([Mutex::new(0u32), Mutex::new(0u32)]);
            let writer = {
                let shards = shards.clone();
                thread::spawn(move || {
                    for shard in shards.iter() {
                        *shard.lock() += 1;
                    }
                })
            };
            let mut total = 0;
            for shard in shards.iter() {
                total += *shard.lock();
            }
            writer.join().unwrap();
            assert!(total <= 2);
            let settled: u32 = shards.iter().map(|s| *s.lock()).sum();
            assert_eq!(settled, 2);
        });
        assert!(report.proven());
    }

    /// The model must still catch hierarchy inversions through the
    /// parking_lot API (the daemon's lock-order discipline is enforced
    /// statically by actyp-lint; this is the dynamic counterpart).
    #[test]
    fn ab_ba_inversion_caught() {
        let report = explorer().explore(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join().unwrap();
        });
        let failure = report.failure.expect("inversion must deadlock");
        assert!(failure.message.contains("deadlock"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_survives_panic_while_held() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let cloned = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cloned.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(7);
        assert_eq!(m.into_inner(), vec![7]);
    }

    // Under the model feature try_* are modelled as blocking acquires
    // (the checker owns contention), so these two back-off tests would
    // self-deadlock there — they only make sense against the std shim.
    #[cfg(not(feature = "model"))]
    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(5);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended try_lock succeeds"), 5);
    }

    #[cfg(not(feature = "model"))]
    #[test]
    fn try_read_and_try_write_respect_exclusivity() {
        let lock = RwLock::new(1);
        {
            let _r = lock.read();
            // Readers share; a writer must back off.
            assert!(lock.try_read().is_some());
            assert!(lock.try_write().is_none());
        }
        {
            let _w = lock.write();
            assert!(lock.try_read().is_none());
            assert!(lock.try_write().is_none());
        }
        *lock.try_write().expect("uncontended try_write succeeds") += 1;
        assert_eq!(*lock.try_read().expect("uncontended try_read succeeds"), 2);
    }
}
