//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, tuple composition,
//! integer-range and
//! sampling strategies, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//! - cases are generated from a fixed deterministic seed (reproducible runs);
//! - there is **no shrinking** — a failing case reports its panic directly.

pub mod test_runner {
    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The fixed-seed RNG used by the [`crate::proptest!`] macro.
        pub fn deterministic() -> Self {
            TestRng(0x9e37_79b9_7f4a_7c15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }

    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // i128 arithmetic: full-width ranges (e.g. i64::MIN..i64::MAX)
                    // must not overflow the span computation.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `prop::bool::ANY` — a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by `prop::sample::select`.
    #[derive(Debug, Clone)]
    pub struct Select<T>(pub(crate) Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select over an empty set");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Strategy returned by `prop::option::of`.
    #[derive(Debug, Clone)]
    pub struct OptionOf<S>(pub(crate) S);

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match the real crate's bias towards `Some` (90%).
            if rng.below(10) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Strategy returned by `prop::collection::vec`.
    #[derive(Debug, Clone)]
    pub struct VecOf<S> {
        pub(crate) element: S,
        pub(crate) size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecOf<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::sample::select`, `prop::bool::ANY`, ...).
pub mod prop {
    /// Sampling from an explicit set of values.
    pub mod sample {
        use crate::strategy::Select;

        /// Strategy picking one element of `values` uniformly.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select(values)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::AnyBool;

        /// A fair coin flip.
        pub const ANY: AnyBool = AnyBool;
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{OptionOf, Strategy};

        /// Strategy producing `Some(value)` most of the time, `None` sometimes.
        pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
            OptionOf(inner)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecOf};

        /// Strategy producing vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecOf<S> {
            VecOf { element, size }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }` runs
/// `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; ) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&s));
            // Full-width signed range: span exceeds i64::MAX.
            let w = (i64::MIN..i64::MAX).generate(&mut rng);
            assert!(w < i64::MAX);
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = prop::collection::vec(prop::sample::select(vec!["a", "b"]), 1..4);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|s| *s == "a" || *s == "b"));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = prop::option::of(0u8..2);
        let produced: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(produced.iter().any(|v| v.is_none()));
        assert!(produced.iter().any(|v| v.is_some()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(x in 0u64..10, flip in prop::bool::ANY) {
            prop_assert!(x < 10);
            let mapped = (0u64..5).prop_map(|v| v * 2);
            let mut rng = crate::test_runner::TestRng::deterministic();
            let even = mapped.generate(&mut rng);
            prop_assert_eq!(even % 2, 0);
            if flip {
                prop_assert_ne!(even, 9);
            }
        }
    }
}
