//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset actyp uses: `crossbeam::channel::unbounded` multi-producer
//! multi-consumer channels with cloneable senders *and* receivers.  The
//! implementation is a mutex-protected queue with a condition variable —
//! not lock-free like the real crate, but semantically equivalent:
//! `send` fails once every receiver is gone, `recv` blocks until a message
//! arrives and fails once the channel is empty with every sender gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;

    // Under the `model` feature the channel's lock and condvar come from
    // actyp-model: channels created inside `Explorer::explore` are then
    // deterministically interleaved (including the signal-absorption
    // branch of `notify_one`), while channels created anywhere else fall
    // back to real `std::sync` internals.
    #[cfg(feature = "model")]
    use actyp_model::sync::{Condvar, Mutex};
    #[cfg(not(feature = "model"))]
    use std::sync::{Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Passes the wakeup baton on: a receiver that pops a message while
        /// more remain must re-notify, because two `send`s can both wake
        /// the SAME blocked receiver (a thread that has been signalled but
        /// not yet scheduled still absorbs further `notify_one`s on many
        /// implementations).  That receiver consumes exactly one message
        /// and leaves — without the hand-off, the second message would sit
        /// queued while every other consumer sleeps forever.  Single-
        /// consumer channels are unaffected; multi-consumer pools (the
        /// `ypd` reactor's worker lanes) deadlocked on exactly this.
        fn pass_baton(&self, state: &State<T>) {
            // `buggy-baton` (test-only) reverts this fix so the model
            // checker can prove it still catches the resulting deadlock.
            #[cfg(not(feature = "buggy-baton"))]
            if !state.queue.is_empty() {
                self.0.ready.notify_one();
            }
            #[cfg(feature = "buggy-baton")]
            let _ = state;
        }

        /// Blocks until a message arrives, failing once the channel is empty
        /// with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.pass_baton(&state);
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message; fails with `Timeout` once
        /// the deadline passes and with `Disconnected` once the channel is
        /// empty with no senders left.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.pass_baton(&state);
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self.0.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(value) => {
                    self.pass_baton(&state);
                    Ok(value)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        /// Multi-consumer competition can genuinely hang when the baton
        /// hand-off is reverted, so keep this off under `buggy-baton`.
        #[cfg(not(feature = "buggy-baton"))]
        #[test]
        fn cloned_receivers_compete_for_messages() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let workers: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|rx| std::thread::spawn(move || rx.recv().is_ok() as usize))
                .collect();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let got: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(got, 2);
        }

        /// The worker-pool shape that exposed the lost wakeup: several
        /// consumers blocked on one channel, producers bursting messages.
        /// Two sends could wake the same consumer, which takes one message
        /// and leaves — stranding the other message forever.  With the
        /// wakeup hand-off every message is consumed.
        #[cfg(not(feature = "buggy-baton"))]
        #[test]
        fn bursts_reach_every_blocked_consumer() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Arc;

            for _round in 0..50 {
                let (tx, rx) = unbounded::<u32>();
                let consumed = Arc::new(AtomicUsize::new(0));
                let consumers: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        let consumed = consumed.clone();
                        std::thread::spawn(move || {
                            while rx.recv().is_ok() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                drop(rx);
                let producers: Vec<_> = (0..3)
                    .map(|p| {
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            for i in 0..40 {
                                tx.send(p * 100 + i).unwrap();
                            }
                        })
                    })
                    .collect();
                drop(tx);
                for producer in producers {
                    producer.join().unwrap();
                }
                for consumer in consumers {
                    consumer.join().unwrap();
                }
                assert_eq!(consumed.load(Ordering::Relaxed), 120, "no message stranded");
            }
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded();
            let waiter = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42).unwrap();
            assert_eq!(waiter.join().unwrap(), Ok(42));
        }
    }
}

/// Bounded-interleaving proofs of the channel (`--features model`), run
/// by the CI `model-check` job.  Every channel created inside
/// `Explorer::explore` routes its lock and condvar through the
/// cooperative scheduler; `notify_one` explicitly branches into the
/// signal-absorption case that caused the worker-lane lost wakeup.
#[cfg(all(test, feature = "model"))]
mod model_tests {
    use super::channel::unbounded;
    use actyp_model::{thread, Explorer};
    use std::sync::Arc;

    fn explorer() -> Explorer {
        Explorer {
            max_schedules: 200_000,
            preemption_bound: 2,
            op_budget: 50_000,
        }
    }

    /// The exact worker-lane shape behind the PR 5 bug: two consumers
    /// each take one message, producer bursts two sends.  Exhaustively
    /// deadlock-free *only* because of the wakeup hand-off in
    /// `pass_baton` — see `lost_wakeup_recaught` for the reverted form.
    #[cfg(not(feature = "buggy-baton"))]
    #[test]
    fn mpmc_burst_to_two_consumers_proven() {
        let report = explorer().prove(|| {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            let c1 = thread::spawn(move || rx.recv().unwrap());
            let c2 = thread::spawn(move || rx2.recv().unwrap());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got = c1.join().unwrap() + c2.join().unwrap();
            assert_eq!(got, 3, "both messages consumed, once each");
        });
        assert!(report.proven());
        assert!(report.schedules > 10, "interleavings actually explored");
    }

    /// Worker-pool shutdown protocol over the channel: each worker loops
    /// on `recv`, counts work, and exits on a stop marker queued behind
    /// the work — the `WorkerPool::shutdown` discipline in miniature.
    #[cfg(not(feature = "buggy-baton"))]
    #[test]
    fn worker_pool_stop_protocol_proven() {
        #[derive(Clone, Copy)]
        enum Job {
            Run,
            Stop,
        }
        let report = Explorer {
            max_schedules: 200_000,
            preemption_bound: 1,
            op_budget: 50_000,
        }
        .prove(|| {
            let (tx, rx) = unbounded::<Job>();
            let tally = Arc::new(actyp_model::sync::Mutex::new(0u8));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    let tally = tally.clone();
                    thread::spawn(move || loop {
                        match rx.recv() {
                            Ok(Job::Run) => *tally.lock().unwrap() += 1,
                            Ok(Job::Stop) | Err(_) => break,
                        }
                    })
                })
                .collect();
            tx.send(Job::Run).unwrap();
            // Stop markers behind the queued work, one per worker.
            tx.send(Job::Stop).unwrap();
            tx.send(Job::Stop).unwrap();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(*tally.lock().unwrap(), 1, "the job ran exactly once");
        });
        assert!(report.proven());
    }

    /// Disconnect semantics under every schedule: a consumer draining
    /// until `Err` terminates once the last sender drops.
    #[cfg(not(feature = "buggy-baton"))]
    #[test]
    fn drain_until_disconnect_proven() {
        let report = explorer().prove(|| {
            let (tx, rx) = unbounded::<u8>();
            let consumer = thread::spawn(move || {
                let mut got = 0u8;
                while let Ok(v) = rx.recv() {
                    got += v;
                }
                got
            });
            tx.send(5).unwrap();
            drop(tx);
            assert_eq!(consumer.join().unwrap(), 5);
        });
        assert!(report.proven());
    }

    /// REGRESSION (`--features model,buggy-baton`): with the PR 5 wakeup
    /// hand-off reverted, two sends can both land on the same blocked
    /// consumer — the second signal is absorbed, the other consumer
    /// starves with its message queued.  The exploration must re-find
    /// that deadlock within a bounded number of interleavings.
    #[cfg(feature = "buggy-baton")]
    #[test]
    fn lost_wakeup_recaught() {
        let report = explorer().explore(|| {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            let c1 = thread::spawn(move || rx.recv().unwrap());
            let c2 = thread::spawn(move || rx2.recv().unwrap());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            c1.join().unwrap();
            c2.join().unwrap();
        });
        let failure = report
            .failure
            .expect("reverted baton fix must deadlock within the bounded exploration");
        assert!(
            failure.message.contains("deadlock"),
            "expected a deadlock, got: {}",
            failure.message
        );
        assert!(
            report.schedules <= 5_000,
            "lost wakeup should surface within a few thousand interleavings, took {}",
            report.schedules
        );
    }
}
