//! The cooperative scheduler and the depth-first schedule explorer.
//!
//! Model threads are real OS threads, but only the one the scheduler has
//! marked *active* executes; everyone else sleeps on the scheduler's
//! condvar.  Every visible operation funnels through this module, which
//! turns "which thread runs next / which waiter wakes / is this signal
//! absorbed" into recorded decision points that [`Explorer`] enumerates.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// Sentinel panic payload used to unwind model threads when a run is
/// aborted (deadlock found, budget exhausted, another thread panicked).
/// Never surfaces to user code.
pub(crate) struct AbortToken;

/// Where one model thread currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// May be scheduled.
    Runnable,
    /// Blocked acquiring mutex `id`.
    Lock(usize),
    /// Blocked acquiring rwlock `id` (`true` = for writing).
    Rw(usize, bool),
    /// Blocked in an untimed condvar wait on cv `id`.
    Cv(usize),
    /// Blocked in a *timed* condvar wait on cv `id` — may always be
    /// forced to time out, so it never deadlocks a run by itself.
    CvTimeout(usize),
    /// Blocked joining thread `tid`.
    Join(usize),
    /// Returned (or unwound); never scheduled again.
    Finished,
}

/// One reader/writer lock's model state.
#[derive(Debug, Default)]
struct RwState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

/// One condvar's model state.  `woken` holds threads that have been
/// signalled but have not yet returned from their wait — while any
/// exist, a further `notify_one` may be absorbed (see the crate docs).
#[derive(Debug, Default)]
struct CvState {
    waiting: Vec<usize>,
    woken: Vec<usize>,
}

/// Everything mutable about one run, under the scheduler's one lock.
struct SchedState {
    threads: Vec<ThreadState>,
    /// Scratch flag per thread: its last timed wait timed out.
    timed_out: Vec<bool>,
    /// The only thread allowed to execute user code right now.
    active: usize,
    locks: Vec<Option<usize>>,
    rws: Vec<RwState>,
    cvs: Vec<CvState>,
    /// Decision indices prescribed for this run (the DFS prefix).
    schedule: Vec<usize>,
    cursor: usize,
    /// Every decision point taken: `(options, chosen)`.
    trace: Vec<(usize, usize)>,
    preemptions_left: usize,
    ops_left: usize,
    failure: Option<String>,
    aborting: bool,
    /// Threads not yet `Finished`.
    live: usize,
}

impl SchedState {
    /// Takes the next decision among `options` alternatives: prescribed
    /// by the schedule prefix when available, the first alternative
    /// otherwise.  Recorded in the trace for backtracking.
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 2, "decision points need at least two options");
        let chosen = if self.cursor < self.schedule.len() {
            self.schedule[self.cursor].min(options - 1)
        } else {
            0
        };
        self.trace.push((options, chosen));
        self.cursor += 1;
        chosen
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t] == ThreadState::Runnable)
            .collect()
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
        self.aborting = true;
    }

    /// Charges one scheduler operation against the run's budget; an
    /// exhausted budget means the schedule stopped making progress.
    fn spend_op(&mut self) {
        if self.ops_left == 0 {
            self.fail("operation budget exhausted (livelock under this schedule?)".to_string());
        } else {
            self.ops_left -= 1;
        }
    }

    /// Picks the next thread to execute after the active one blocked or
    /// finished.  Prefers runnable threads (a decision point when there
    /// is more than one); failing that, forces a timed waiter to time
    /// out; failing *that*, the run is deadlocked.
    fn pick_next(&mut self) {
        let runnable = self.runnable();
        if !runnable.is_empty() {
            let idx = if runnable.len() == 1 {
                0
            } else {
                self.choose(runnable.len())
            };
            self.active = runnable[idx];
            return;
        }
        let timed: Vec<usize> = (0..self.threads.len())
            .filter(|&t| matches!(self.threads[t], ThreadState::CvTimeout(_)))
            .collect();
        if !timed.is_empty() {
            let idx = if timed.len() == 1 {
                0
            } else {
                self.choose(timed.len())
            };
            let t = timed[idx];
            if let ThreadState::CvTimeout(cv) = self.threads[t] {
                self.cvs[cv].waiting.retain(|&x| x != t);
            }
            self.threads[t] = ThreadState::Runnable;
            self.timed_out[t] = true;
            self.active = t;
            return;
        }
        if self.live == 0 {
            return;
        }
        let stuck: Vec<String> = (0..self.threads.len())
            .filter(|&t| self.threads[t] != ThreadState::Finished)
            .map(|t| format!("thread {t} {:?}", self.threads[t]))
            .collect();
        self.fail(format!("deadlock: [{}]", stuck.join(", ")));
    }
}

/// The gate every model thread executes through.
pub(crate) struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Scheduler {
    fn new(schedule: Vec<usize>, preemption_bound: usize, op_budget: usize) -> Self {
        Scheduler {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                timed_out: Vec::new(),
                active: 0,
                locks: Vec::new(),
                rws: Vec::new(),
                cvs: Vec::new(),
                schedule,
                cursor: 0,
                trace: Vec::new(),
                preemptions_left: preemption_bound,
                ops_left: op_budget,
                failure: None,
                aborting: false,
                live: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Unwinds the calling model thread out of the aborted run.
    fn abort_now() -> ! {
        std::panic::panic_any(AbortToken)
    }

    /// Sleeps until this thread is the active runnable one (or the run
    /// aborts, which unwinds).
    ///
    /// When the calling thread is *already* unwinding (destructors
    /// running during an abort), a second panic would SIGABRT the whole
    /// process — so an aborting run hands the guard straight back and
    /// lets teardown proceed unscheduled.
    fn wait_turn<'a>(
        &'a self,
        mut st: StdGuard<'a, SchedState>,
        me: usize,
    ) -> StdGuard<'a, SchedState> {
        loop {
            if st.aborting {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                Self::abort_now();
            }
            if st.active == me && st.threads[me] == ThreadState::Runnable {
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// The active thread stops being runnable (its state was already set
    /// by the caller): pick a successor, then sleep until rescheduled.
    fn block<'a>(
        &'a self,
        mut st: StdGuard<'a, SchedState>,
        me: usize,
    ) -> StdGuard<'a, SchedState> {
        st.pick_next();
        self.cv.notify_all();
        self.wait_turn(st, me)
    }

    /// A voluntary context-switch opportunity before a visible operation.
    /// Switching away from a runnable thread costs one unit of the
    /// preemption budget; with the budget spent the active thread just
    /// keeps running (CHESS-style context bounding).
    pub(crate) fn preempt_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.aborting {
            let unwinding = std::thread::panicking();
            drop(st);
            if unwinding {
                return;
            }
            Self::abort_now();
        }
        st.spend_op();
        if st.aborting {
            drop(st);
            Self::abort_now();
        }
        if st.preemptions_left == 0 {
            return;
        }
        let others: Vec<usize> = st.runnable().into_iter().filter(|&t| t != me).collect();
        if others.is_empty() {
            return;
        }
        let idx = st.choose(1 + others.len());
        if idx == 0 {
            return;
        }
        st.preemptions_left -= 1;
        st.active = others[idx - 1];
        self.cv.notify_all();
        let _resumed = self.wait_turn(st, me);
    }

    // --- thread lifecycle -------------------------------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadState::Runnable);
        st.timed_out.push(false);
        st.live += 1;
        st.threads.len() - 1
    }

    /// Blocks the new OS thread until the scheduler gives it its first
    /// slot.  Returns `false` when the run aborted before that happened.
    pub(crate) fn start_thread(&self, me: usize) -> bool {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let st = self.lock_state();
            let st = self.wait_turn(st, me);
            drop(st);
        }));
        outcome.is_ok()
    }

    pub(crate) fn thread_finish(&self, me: usize, panic_message: Option<String>) {
        let mut st = self.lock_state();
        st.threads[me] = ThreadState::Finished;
        st.live -= 1;
        match panic_message {
            Some(msg) => st.fail(format!("thread {me} panicked: {msg}")),
            None => {
                let joiners: Vec<usize> = (0..st.threads.len())
                    .filter(|&t| st.threads[t] == ThreadState::Join(me))
                    .collect();
                for t in joiners {
                    st.threads[t] = ThreadState::Runnable;
                }
                if !st.aborting {
                    st.pick_next();
                }
            }
        }
        self.cv.notify_all();
    }

    /// Marks an abort-unwound thread finished without scheduling anyone.
    pub(crate) fn thread_finish_aborted(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me] = ThreadState::Finished;
        st.live -= 1;
        self.cv.notify_all();
    }

    pub(crate) fn join_thread(&self, target: usize, me: usize) {
        self.preempt_point(me);
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                let unwinding = std::thread::panicking();
                drop(st);
                if unwinding {
                    return;
                }
                Self::abort_now();
            }
            if st.threads[target] == ThreadState::Finished {
                return;
            }
            st.threads[me] = ThreadState::Join(target);
            st = self.block(st, me);
        }
    }

    // --- mutex ------------------------------------------------------------

    pub(crate) fn new_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.locks.push(None);
        st.locks.len() - 1
    }

    pub(crate) fn lock_acquire(&self, id: usize, me: usize) {
        self.preempt_point(me);
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                let unwinding = std::thread::panicking();
                drop(st);
                if unwinding {
                    // Teardown destructor: proceed unguarded rather than
                    // double-panic; the run's data is already discarded.
                    return;
                }
                Self::abort_now();
            }
            if st.locks[id].is_none() {
                st.locks[id] = Some(me);
                return;
            }
            st.threads[me] = ThreadState::Lock(id);
            st = self.block(st, me);
        }
    }

    pub(crate) fn lock_release(&self, id: usize) {
        let mut st = self.lock_state();
        st.locks[id] = None;
        let contenders: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Lock(id))
            .collect();
        for t in contenders {
            st.threads[t] = ThreadState::Runnable;
        }
        // The releaser keeps running; who wins the lock is decided at the
        // contenders' next scheduling points.
    }

    // --- condvar ----------------------------------------------------------

    pub(crate) fn new_cv(&self) -> usize {
        let mut st = self.lock_state();
        st.cvs.push(CvState::default());
        st.cvs.len() - 1
    }

    /// Releases `lock_id`, waits on `cv_id`, reacquires, and reports
    /// whether a timed wait was forced to time out.
    pub(crate) fn cv_wait(&self, cv_id: usize, lock_id: usize, me: usize, timed: bool) -> bool {
        let mut st = self.lock_state();
        if st.aborting {
            let unwinding = std::thread::panicking();
            drop(st);
            if unwinding {
                return false;
            }
            Self::abort_now();
        }
        st.spend_op();
        // Atomically: release the paired mutex and join the wait set —
        // exactly the guarantee pthread_cond_wait gives.
        st.locks[lock_id] = None;
        let contenders: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Lock(lock_id))
            .collect();
        for t in contenders {
            st.threads[t] = ThreadState::Runnable;
        }
        st.cvs[cv_id].waiting.push(me);
        st.timed_out[me] = false;
        st.threads[me] = if timed {
            ThreadState::CvTimeout(cv_id)
        } else {
            ThreadState::Cv(cv_id)
        };
        st = self.block(st, me);
        let timed_out = st.timed_out[me];
        st.timed_out[me] = false;
        // Reacquire the mutex before returning, like a real wait.
        loop {
            if st.aborting {
                let unwinding = std::thread::panicking();
                drop(st);
                if unwinding {
                    return timed_out;
                }
                Self::abort_now();
            }
            if st.locks[lock_id].is_none() {
                st.locks[lock_id] = Some(me);
                break;
            }
            st.threads[me] = ThreadState::Lock(lock_id);
            st = self.block(st, me);
        }
        st.cvs[cv_id].woken.retain(|&t| t != me);
        timed_out
    }

    /// `notify_one` with absorption semantics: branches between waking
    /// each current waiter and — when a previously signalled thread has
    /// not yet resumed — doing nothing at all.
    pub(crate) fn cv_notify_one(&self, cv_id: usize, me: usize) {
        self.preempt_point(me);
        let mut st = self.lock_state();
        if st.aborting {
            let unwinding = std::thread::panicking();
            drop(st);
            if unwinding {
                return;
            }
            Self::abort_now();
        }
        let waiting = st.cvs[cv_id].waiting.clone();
        if waiting.is_empty() {
            return;
        }
        let absorbable = !st.cvs[cv_id].woken.is_empty();
        let options = waiting.len() + usize::from(absorbable);
        let idx = if options == 1 { 0 } else { st.choose(options) };
        if idx < waiting.len() {
            let t = waiting[idx];
            st.cvs[cv_id].waiting.retain(|&x| x != t);
            st.cvs[cv_id].woken.push(t);
            st.threads[t] = ThreadState::Runnable;
        }
        // idx == waiting.len(): the signal was absorbed by an
        // already-woken thread — the lost-wakeup weakness, made explicit.
    }

    pub(crate) fn cv_notify_all(&self, cv_id: usize, me: usize) {
        self.preempt_point(me);
        let mut st = self.lock_state();
        if st.aborting {
            let unwinding = std::thread::panicking();
            drop(st);
            if unwinding {
                return;
            }
            Self::abort_now();
        }
        let waiting = std::mem::take(&mut st.cvs[cv_id].waiting);
        for t in waiting {
            st.cvs[cv_id].woken.push(t);
            st.threads[t] = ThreadState::Runnable;
        }
    }

    // --- rwlock -----------------------------------------------------------

    pub(crate) fn new_rw(&self) -> usize {
        let mut st = self.lock_state();
        st.rws.push(RwState::default());
        st.rws.len() - 1
    }

    pub(crate) fn rw_acquire(&self, id: usize, me: usize, write: bool) {
        self.preempt_point(me);
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                let unwinding = std::thread::panicking();
                drop(st);
                if unwinding {
                    return;
                }
                Self::abort_now();
            }
            let free = if write {
                st.rws[id].writer.is_none() && st.rws[id].readers.is_empty()
            } else {
                st.rws[id].writer.is_none()
            };
            if free {
                if write {
                    st.rws[id].writer = Some(me);
                } else {
                    st.rws[id].readers.push(me);
                }
                return;
            }
            st.threads[me] = ThreadState::Rw(id, write);
            st = self.block(st, me);
        }
    }

    pub(crate) fn rw_release(&self, id: usize, me: usize, write: bool) {
        let mut st = self.lock_state();
        if write {
            st.rws[id].writer = None;
        } else {
            st.rws[id].readers.retain(|&t| t != me);
        }
        let contenders: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t], ThreadState::Rw(l, _) if l == id))
            .collect();
        for t in contenders {
            st.threads[t] = ThreadState::Runnable;
        }
    }
}

/// One run's shared context: the scheduler plus the OS threads it owns.
pub(crate) struct RunCtx {
    pub(crate) sched: Scheduler,
    os_threads: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl RunCtx {
    pub(crate) fn adopt_os_thread(&self, handle: std::thread::JoinHandle<()>) {
        self.os_threads
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(handle);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<RunCtx>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's run context and model tid, when it is a model
/// thread of an exploration in progress.
pub(crate) fn current() -> Option<(Arc<RunCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Arc<RunCtx>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((ctx, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Renders a panic payload for failure reports.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A failing schedule: what went wrong and the decision indices that
/// reproduce it (feed them back as a schedule prefix to replay).
#[derive(Debug, Clone)]
pub struct Failure {
    /// Deadlock, panic, or budget-exhaustion description.
    pub message: String,
    /// The decision indices of the failing run.
    pub schedule: Vec<usize>,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// The bounded decision space was fully enumerated (no failure, and
    /// no remaining unexplored branch).
    pub exhausted: bool,
    /// The first failing schedule, if any — exploration stops on it.
    pub failure: Option<Failure>,
}

impl Report {
    /// True when the whole bounded space was explored without a failure.
    pub fn proven(&self) -> bool {
        self.exhausted && self.failure.is_none()
    }
}

/// Depth-first enumerator of bounded thread interleavings.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hard cap on schedules explored (the run *fails to prove*, without
    /// erroring, when the space is larger).
    pub max_schedules: usize,
    /// Forced-preemption budget per schedule (CHESS-style bounding).
    /// Blocking context switches are always free.
    pub preemption_bound: usize,
    /// Scheduler-operation budget per schedule; exhausting it fails the
    /// schedule as a livelock.
    pub op_budget: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_schedules: 50_000,
            preemption_bound: 2,
            op_budget: 100_000,
        }
    }
}

impl Explorer {
    /// Runs `body` under every schedule in the bounded space, stopping at
    /// the first failure.  `body` is invoked once per schedule as model
    /// thread 0; it may spawn further threads with [`crate::thread::spawn`]
    /// and must confine cross-thread communication to the model-aware
    /// sync primitives.
    pub fn explore<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut schedule: Vec<usize> = Vec::new();
        let mut schedules = 0;
        loop {
            let (trace, failure) = self.run_once(body.clone(), schedule.clone());
            schedules += 1;
            if let Some(message) = failure {
                return Report {
                    schedules,
                    exhausted: false,
                    failure: Some(Failure {
                        message,
                        schedule: trace.iter().map(|&(_, chosen)| chosen).collect(),
                    }),
                };
            }
            // Backtrack: deepest decision point with an unexplored branch.
            let branch = (0..trace.len())
                .rev()
                .find(|&i| trace[i].1 + 1 < trace[i].0);
            match branch {
                None => {
                    return Report {
                        schedules,
                        exhausted: true,
                        failure: None,
                    }
                }
                Some(i) => {
                    schedule = trace[..i].iter().map(|&(_, chosen)| chosen).collect();
                    schedule.push(trace[i].1 + 1);
                }
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    exhausted: false,
                    failure: None,
                };
            }
        }
    }

    /// Explores and panics with the failure unless the bounded space was
    /// fully enumerated clean — the assertion form model tests use.
    pub fn prove<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.explore(body);
        if let Some(failure) = &report.failure {
            panic!(
                "model check failed after {} schedules: {} (schedule {:?})",
                report.schedules, failure.message, failure.schedule
            );
        }
        assert!(
            report.exhausted,
            "decision space not exhausted within {} schedules — raise max_schedules",
            report.schedules
        );
        report
    }

    fn run_once(
        &self,
        body: Arc<dyn Fn() + Send + Sync>,
        schedule: Vec<usize>,
    ) -> (Vec<(usize, usize)>, Option<String>) {
        let ctx = Arc::new(RunCtx {
            sched: Scheduler::new(schedule, self.preemption_bound, self.op_budget),
            os_threads: StdMutex::new(Vec::new()),
        });
        let root = ctx.sched.register_thread();
        let root_ctx = ctx.clone();
        let handle = std::thread::Builder::new()
            .name("model-0".to_string())
            .spawn(move || {
                set_current(root_ctx.clone(), root);
                if root_ctx.sched.start_thread(root) {
                    match catch_unwind(AssertUnwindSafe(|| body())) {
                        Ok(()) => root_ctx.sched.thread_finish(root, None),
                        Err(p) if p.is::<AbortToken>() => {
                            root_ctx.sched.thread_finish_aborted(root)
                        }
                        Err(p) => root_ctx
                            .sched
                            .thread_finish(root, Some(panic_message(p.as_ref()))),
                    }
                } else {
                    root_ctx.sched.thread_finish_aborted(root);
                }
                clear_current();
            })
            .expect("spawn model root thread");
        ctx.adopt_os_thread(handle);

        // Wait for every model thread to finish (normally or by abort
        // unwinding), then reap the OS threads.
        {
            let mut st = ctx.sched.lock_state();
            while st.live > 0 {
                st = ctx
                    .sched
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        loop {
            let handle = ctx
                .os_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let st = ctx.sched.lock_state();
        (st.trace.clone(), st.failure.clone())
    }
}
