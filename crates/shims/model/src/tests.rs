//! Self-checks for the model checker: it must *prove* correct protocols
//! (exhaust the bounded space cleanly) and *find* the classic failures —
//! deadlock by lock-order inversion, missed signal, signal absorption.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex, RwLock};
use crate::{thread, Explorer};

fn small() -> Explorer {
    Explorer {
        max_schedules: 20_000,
        preemption_bound: 2,
        op_budget: 10_000,
    }
}

#[test]
fn proves_two_incrementers() {
    let report = small().prove(|| {
        let counter = Arc::new(Mutex::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    *counter.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    assert!(report.proven());
    assert!(report.schedules > 1, "interleavings were actually explored");
}

#[test]
fn finds_ab_ba_deadlock() {
    let report = small().explore(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
    let failure = report
        .failure
        .expect("AB/BA inversion must deadlock some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}

#[test]
fn finds_missed_signal_without_predicate_loop() {
    // Waiter parks unconditionally; if the notifier fires first the
    // signal is lost and the waiter sleeps forever.
    let report = small().explore(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let guard = pair2.0.lock().unwrap();
            let _guard = pair2.1.wait(guard).unwrap();
        });
        pair.1.notify_one();
        t.join().unwrap();
    });
    let failure = report
        .failure
        .expect("missed signal must deadlock some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}

#[test]
fn proves_predicate_loop_doorbell() {
    // The Waker/doorbell protocol: flag under the mutex, wait in a
    // predicate loop, notify after setting.  Correct under every
    // schedule, including absorption branches.
    let report = small().prove(|| {
        let bell = Arc::new((Mutex::new(false), Condvar::new()));
        let bell2 = bell.clone();
        let waiter = thread::spawn(move || {
            let mut rung = bell2.0.lock().unwrap();
            while !*rung {
                rung = bell2.1.wait(rung).unwrap();
            }
        });
        *bell.0.lock().unwrap() = true;
        bell.1.notify_one();
        waiter.join().unwrap();
    });
    assert!(report.proven());
}

#[test]
fn finds_signal_absorption_with_two_waiters() {
    // Two waiters each need one wakeup; two notify_ones *can* both land
    // on the first waiter (absorption), stranding the second — exactly
    // the weakness behind the PR 5 lost-wakeup.  The model must reach
    // that branch.
    let report = small().explore(|| {
        let pair = Arc::new((Mutex::new(0u8), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let pair = pair.clone();
                thread::spawn(move || {
                    let mut granted = pair.0.lock().unwrap();
                    while *granted == 0 {
                        granted = pair.1.wait(granted).unwrap();
                    }
                    *granted -= 1; // consume one grant, then leave
                })
            })
            .collect();
        {
            let mut granted = pair.0.lock().unwrap();
            *granted += 1;
            pair.1.notify_one();
            *granted += 1;
            pair.1.notify_one();
        }
        for w in waiters {
            w.join().unwrap();
        }
    });
    let failure = report
        .failure
        .expect("two notify_ones absorbed by one waiter must strand the other");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}

#[test]
fn forced_timeout_rescues_timed_wait() {
    // A timed wait with no notifier in sight is not a deadlock: the
    // scheduler forces the timeout branch.
    let report = small().prove(|| {
        let pair = (Mutex::new(()), Condvar::new());
        let guard = pair.0.lock().unwrap();
        let (_guard, result) = pair
            .1
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(result.timed_out());
    });
    assert!(report.proven());
}

#[test]
fn join_returns_thread_value() {
    let report = small().prove(|| {
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
    assert!(report.proven());
}

#[test]
fn proves_rwlock_writer_exclusion() {
    let report = small().prove(|| {
        let shared = Arc::new(RwLock::new(0));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || {
                    let mut v = shared.write().unwrap();
                    let read = *v;
                    *v = read + 1;
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*shared.read().unwrap(), 2);
    });
    assert!(report.proven());
}

#[test]
fn reports_model_thread_panic() {
    let report = small().explore(|| {
        let t = thread::spawn(|| {
            panic!("boom in model thread");
        });
        t.join().unwrap();
    });
    let failure = report.failure.expect("panic must fail the schedule");
    assert!(failure.message.contains("boom"), "got: {}", failure.message);
}

#[test]
fn real_fallback_outside_exploration() {
    // Constructed on an ordinary thread, the primitives are plain locks.
    let m = Arc::new(Mutex::new(0));
    let m2 = m.clone();
    let t = std::thread::spawn(move || {
        *m2.lock().unwrap() += 1;
    });
    t.join().unwrap();
    assert_eq!(*m.lock().unwrap(), 1);

    let rw = RwLock::new(5);
    assert_eq!(*rw.read().unwrap(), 5);
    *rw.write().unwrap() = 6;
    assert_eq!(rw.into_inner().unwrap(), 6);
}

#[test]
fn failing_schedule_is_replayable() {
    // Feeding a reported failing schedule back as the prefix must
    // reproduce the failure on the first run.
    let body = || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    };
    let report = small().explore(body);
    let failure = report.failure.expect("deadlock expected");
    // Replay: max_schedules=1 starting from the failing schedule would
    // need explorer support for seeded prefixes; instead assert the
    // schedule is non-empty and the failure is deterministic across a
    // second full exploration.
    assert!(!failure.schedule.is_empty());
    let again = small().explore(body);
    assert_eq!(
        again.failure.expect("same failure again").schedule,
        failure.schedule,
        "exploration is deterministic"
    );
}
