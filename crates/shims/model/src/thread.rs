//! Model-aware thread spawn/join.
//!
//! [`spawn`] on a model thread creates another *model* thread: a real OS
//! thread gated by the run's scheduler, visible to deadlock detection
//! and joinable through the scheduler.  Outside an exploration it
//! degrades to `std::thread::spawn`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::sched::{self, panic_message, AbortToken, RunCtx};

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        ctx: Arc<RunCtx>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Under the model a child panic aborts the entire schedule (the
    /// explorer reports it), so the `Err` arm only surfaces on the real
    /// fallback path.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(handle) => handle.join(),
            Inner::Model { ctx, tid, result } => {
                let (current, me) = sched::current()
                    .expect("model JoinHandle joined from a thread outside its exploration");
                assert!(
                    Arc::ptr_eq(&current, &ctx),
                    "model JoinHandle joined from a different exploration"
                );
                ctx.sched.join_thread(tid, me);
                let value = result
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                    .expect("joined model thread left no result");
                Ok(value)
            }
        }
    }
}

/// Spawns a thread; model-gated iff called on a model thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((ctx, me)) = sched::current() else {
        return JoinHandle(Inner::Real(std::thread::spawn(f)));
    };
    ctx.sched.preempt_point(me);
    let tid = ctx.sched.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let child_ctx = ctx.clone();
    let child_result = result.clone();
    let handle = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            sched::set_current(child_ctx.clone(), tid);
            if child_ctx.sched.start_thread(tid) {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(value) => {
                        *child_result
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(value);
                        child_ctx.sched.thread_finish(tid, None);
                    }
                    Err(payload) if payload.is::<AbortToken>() => {
                        child_ctx.sched.thread_finish_aborted(tid);
                    }
                    Err(payload) => {
                        child_ctx
                            .sched
                            .thread_finish(tid, Some(panic_message(payload.as_ref())));
                    }
                }
            } else {
                child_ctx.sched.thread_finish_aborted(tid);
            }
            sched::clear_current();
        })
        .expect("spawn model thread");
    ctx.adopt_os_thread(handle);
    JoinHandle(Inner::Model { ctx, tid, result })
}
