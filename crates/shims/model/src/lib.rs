//! # actyp-model — a bounded-interleaving model checker for the lock shims
//!
//! Every serious bug this workspace has shipped was a concurrency defect
//! found dynamically and late: the crossbeam-shim lost wakeup surfaced
//! only under a 100-client reactor soak, the peer-link write-while-locked
//! wedge only under a stalled peer.  This crate turns those classes of
//! bug into *compile-and-run-exhaustively* properties: a controlled
//! cooperative scheduler that deterministically enumerates the bounded
//! interleaving space of a small concurrent program, in the style of
//! loom and CHESS.
//!
//! ## How it works
//!
//! [`Explorer::explore`] runs a closure repeatedly.  Threads spawned with
//! [`thread::spawn`] and synchronisation through [`sync::Mutex`],
//! [`sync::Condvar`] and [`sync::RwLock`] are *gated*: exactly one model
//! thread executes at a time, and at every visible operation the
//! scheduler consults a **schedule** — a vector of decision indices — to
//! pick who runs next, which condvar waiter a `notify_one` wakes, or
//! whether a signal is *absorbed* by an already-woken thread (the
//! real-world weakness behind the lost-wakeup bug; see below).  Each run
//! records its decision points; the explorer then backtracks depth-first
//! over the decision tree until the space is exhausted or a bound is hit.
//!
//! Three properties are checked on every schedule:
//!
//! * **deadlock** — no thread runnable, none can time out, yet threads
//!   remain: reported with the stuck thread set;
//! * **panic** — any model thread panicking fails the schedule;
//! * **livelock** — a per-run operation budget catches schedules that
//!   stop making progress.
//!
//! ## Preemption bounding
//!
//! Exhaustive preemption at every operation explodes; following CHESS,
//! the explorer bounds the number of *forced* preemptions per schedule
//! ([`Explorer::preemption_bound`], default 2).  Context switches at
//! natural blocking points (lock contention, condvar waits, joins) are
//! always free — empirically, almost all real concurrency bugs (the
//! lost wakeup included) manifest within two forced preemptions.
//!
//! ## Signal absorption
//!
//! `Condvar::notify_one` wakes *some* thread blocked on the condvar — but
//! on many real implementations a thread that has been signalled and not
//! yet rescheduled absorbs further signals.  Two `send`s can therefore
//! wake the *same* receiver.  The model makes that explicit: when a
//! signalled thread has not yet resumed, `notify_one` branches between
//! waking each current waiter *and doing nothing at all*.  The crossbeam
//! shim's baton hand-off exists precisely because of this semantics, and
//! reverting it (the shims' `buggy-baton` feature) is re-caught by the
//! exploration within a few hundred schedules.
//!
//! ## Scope and limits
//!
//! * Model `Mutex`/`Condvar`/`RwLock` fall back to their `std::sync`
//!   counterparts when used outside an exploration, so a shim compiled
//!   with its `model` feature still behaves normally in ordinary tests.
//! * Timed waits (`wait_timeout`) are modelled as a nondeterministic
//!   choice; code that *loops* on a real-clock deadline around a timed
//!   wait (like `recv_timeout`) can livelock under the model — drive
//!   such paths through untimed `recv` in model tests.
//! * Atomics and raw fds are not modelled; model programs must funnel
//!   all cross-thread communication through the sync primitives above.

pub mod sched;
pub mod sync;
pub mod thread;

#[cfg(test)]
mod tests;

pub use sched::{Explorer, Failure, Report};
