//! Model-aware `Mutex` / `Condvar` / `RwLock` with the `std::sync`
//! surface the lock shims are written against.
//!
//! Each primitive decides **at construction** whether it is a *model*
//! primitive (created on a model thread inside an exploration: all
//! blocking routes through the scheduler) or a *real* one (plain
//! `std::sync` internals).  A shim compiled with its `model` feature
//! therefore still behaves normally in ordinary tests — only objects
//! created inside [`crate::Explorer::explore`] are gated.
//!
//! The API mirrors `std::sync` shapes (`lock()` returns a `Result`,
//! condvar waits hand guards back) so shim code compiles unchanged
//! against either import; poisoning does not exist here, so the error
//! type is uninhabited and `.unwrap()` never fires.

use std::cell::UnsafeCell;
use std::convert::Infallible;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    RwLock as StdRwLock, RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};
use std::time::Duration;

use crate::sched::{self, RunCtx};

/// `std::sync::LockResult` without poisoning: the error is uninhabited,
/// so `.unwrap()` is total.
pub type LockResult<T> = Result<T, Infallible>;

fn expect_model_thread(ctx: &Arc<RunCtx>) -> usize {
    let (current, me) =
        sched::current().expect("model sync primitive used from a thread outside its exploration");
    assert!(
        Arc::ptr_eq(&current, ctx),
        "model sync primitive used from a different exploration"
    );
    me
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

enum MutexRaw {
    Real(StdMutex<()>),
    Model { ctx: Arc<RunCtx>, id: usize },
}

/// A mutex that routes through the model scheduler when created inside
/// an exploration, and through `std::sync::Mutex` otherwise.
pub struct Mutex<T> {
    raw: MutexRaw,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex; model-gated iff called on a model thread.
    pub fn new(value: T) -> Self {
        let raw = match sched::current() {
            Some((ctx, _)) => {
                let id = ctx.sched.new_lock();
                MutexRaw::Model { ctx, id }
            }
            None => MutexRaw::Real(StdMutex::new(())),
        };
        Mutex {
            raw,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock. Never errors (no poisoning); the `Result`
    /// shape exists for `std::sync` source compatibility.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let real = match &self.raw {
            MutexRaw::Real(m) => Some(m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())),
            MutexRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                ctx.sched.lock_acquire(*id, me);
                None
            }
        };
        Ok(MutexGuard {
            lock: self,
            real,
            _not_send: PhantomData,
        })
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// Guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// Held when the parent mutex is real; `None` under the model.
    real: Option<StdMutexGuard<'a, ()>>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let MutexRaw::Model { ctx, id } = &self.lock.raw {
            ctx.sched.lock_release(*id);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait; mirrors `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

enum CvRaw {
    Real(StdCondvar),
    Model { ctx: Arc<RunCtx>, id: usize },
}

/// A condition variable paired with [`Mutex`]; under the model,
/// `notify_one` exhibits explicit signal-absorption nondeterminism
/// (see the crate docs).
pub struct Condvar {
    raw: CvRaw,
}

impl Condvar {
    /// Creates a condvar; model-gated iff called on a model thread.
    pub fn new() -> Self {
        let raw = match sched::current() {
            Some((ctx, _)) => {
                let id = ctx.sched.new_cv();
                CvRaw::Model { ctx, id }
            }
            None => CvRaw::Real(StdCondvar::new()),
        };
        Condvar { raw }
    }

    /// Dismantles a guard without running its release: the caller has
    /// arranged for the lock to be handed off (condvar wait protocol).
    fn disarm<'a, T>(guard: MutexGuard<'a, T>) -> (&'a Mutex<T>, Option<StdMutexGuard<'a, ()>>) {
        let mut guard = guard;
        let lock = guard.lock;
        let real = guard.real.take();
        std::mem::forget(guard);
        (lock, real)
    }

    /// Atomically releases the guard's mutex and waits for a
    /// notification, reacquiring before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &self.raw {
            CvRaw::Real(cv) => {
                let (lock, real) = Self::disarm(guard);
                let real = real.expect("real Condvar paired with a model Mutex");
                let real = cv
                    .wait(real)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                Ok(MutexGuard {
                    lock,
                    real: Some(real),
                    _not_send: PhantomData,
                })
            }
            CvRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                let (lock, real) = Self::disarm(guard);
                assert!(real.is_none(), "model Condvar paired with a real Mutex");
                let MutexRaw::Model { id: lock_id, .. } = &lock.raw else {
                    unreachable!("guard without a real half guards a model mutex")
                };
                ctx.sched.cv_wait(*id, *lock_id, me, false);
                Ok(MutexGuard {
                    lock,
                    real: None,
                    _not_send: PhantomData,
                })
            }
        }
    }

    /// Timed wait.  Under the model the duration is ignored: whether the
    /// wait times out is a scheduler decision, explored both ways.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match &self.raw {
            CvRaw::Real(cv) => {
                let (lock, real) = Self::disarm(guard);
                let real = real.expect("real Condvar paired with a model Mutex");
                let (real, result) = cv
                    .wait_timeout(real, dur)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                Ok((
                    MutexGuard {
                        lock,
                        real: Some(real),
                        _not_send: PhantomData,
                    },
                    WaitTimeoutResult {
                        timed_out: result.timed_out(),
                    },
                ))
            }
            CvRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                let (lock, real) = Self::disarm(guard);
                assert!(real.is_none(), "model Condvar paired with a real Mutex");
                let MutexRaw::Model { id: lock_id, .. } = &lock.raw else {
                    unreachable!("guard without a real half guards a model mutex")
                };
                let timed_out = ctx.sched.cv_wait(*id, *lock_id, me, true);
                Ok((
                    MutexGuard {
                        lock,
                        real: None,
                        _not_send: PhantomData,
                    },
                    WaitTimeoutResult { timed_out },
                ))
            }
        }
    }

    /// Wakes one waiter — or, under the model, possibly nobody when a
    /// signalled thread has not yet resumed (signal absorption).
    pub fn notify_one(&self) {
        match &self.raw {
            CvRaw::Real(cv) => cv.notify_one(),
            CvRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                ctx.sched.cv_notify_one(*id, me);
            }
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match &self.raw {
            CvRaw::Real(cv) => cv.notify_all(),
            CvRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                ctx.sched.cv_notify_all(*id, me);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

enum RwRaw {
    Real(StdRwLock<()>),
    Model { ctx: Arc<RunCtx>, id: usize },
}

/// A reader/writer lock; model-gated iff created inside an exploration.
pub struct RwLock<T> {
    raw: RwRaw,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates an rwlock; model-gated iff called on a model thread.
    pub fn new(value: T) -> Self {
        let raw = match sched::current() {
            Some((ctx, _)) => {
                let id = ctx.sched.new_rw();
                RwRaw::Model { ctx, id }
            }
            None => RwRaw::Real(StdRwLock::new(())),
        };
        RwLock {
            raw,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let real = match &self.raw {
            RwRaw::Real(l) => Some(l.read().unwrap_or_else(|poisoned| poisoned.into_inner())),
            RwRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                ctx.sched.rw_acquire(*id, me, false);
                None
            }
        };
        Ok(RwLockReadGuard {
            lock: self,
            real,
            _not_send: PhantomData,
        })
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let real = match &self.raw {
            RwRaw::Real(l) => Some(l.write().unwrap_or_else(|poisoned| poisoned.into_inner())),
            RwRaw::Model { ctx, id } => {
                let me = expect_model_thread(ctx);
                ctx.sched.rw_acquire(*id, me, true);
                None
            }
        };
        Ok(RwLockWriteGuard {
            lock: self,
            real,
            _not_send: PhantomData,
        })
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    real: Option<StdReadGuard<'a, ()>>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let RwRaw::Model { ctx, id } = &self.lock.raw {
            if let Some((_, me)) = sched::current() {
                ctx.sched.rw_release(*id, me, false);
            }
        }
        let _ = &self.real;
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    real: Option<StdWriteGuard<'a, ()>>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let RwRaw::Model { ctx, id } = &self.lock.raw {
            if let Some((_, me)) = sched::current() {
                ctx.sched.rw_release(*id, me, true);
            }
        }
        let _ = &self.real;
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}
