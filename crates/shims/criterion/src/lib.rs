//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of the criterion API the workspace's benches use: `Criterion`
//! with builder-style configuration, `bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: after a warm-up phase the routine is
//! timed over `sample_size` samples sized to fill `measurement_time`, and the
//! per-iteration mean / min / max are printed.  There are no statistical
//! comparisons with previous runs and no HTML reports — this is a smoke-grade
//! harness that keeps `cargo bench` compiling and producing usable numbers.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away (re-export of
/// `std::hint::black_box`, which real criterion also uses on recent rustc).
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortises setup cost.  The shim runs one setup per
/// routine invocation regardless of the variant, which is the conservative
/// (never-reuses-state) interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Times `routine` over this bencher's sample plan.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut elapsed = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std_black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }
}

/// Benchmark driver mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: one sample of one iteration, reused as warm-up.
        let mut calibration = Vec::with_capacity(1);
        f(&mut Bencher {
            samples: &mut calibration,
            sample_count: 1,
            iters_per_sample: 1,
        });
        let per_iter = calibration
            .first()
            .copied()
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));

        let warm_iters = duration_ratio(self.warm_up_time, per_iter).clamp(1, 1_000_000);
        let mut warm = Vec::with_capacity(1);
        f(&mut Bencher {
            samples: &mut warm,
            sample_count: 1,
            iters_per_sample: warm_iters,
        });

        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = duration_ratio(budget_per_sample, per_iter).clamp(1, 10_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
            iters_per_sample,
        });

        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn duration_ratio(total: Duration, per_iter: Duration) -> u64 {
    (total.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions sharing one `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); none apply here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
