//! Soak-smoke for the reactor session engine: one `ypd` under the
//! event-driven reactor serving ~100 pipelined clients at once, while a
//! peered daemon handles concurrent cross-domain delegations — then a
//! clean drain to exit 0.
//!
//! Run self-contained (hosts both daemons in-process on loopback):
//!
//! ```text
//! cargo run --release -p actyp-suite --example reactor_soak
//! ```
//!
//! Or against external daemons (as CI's `reactor-soak-smoke` job does):
//!
//! ```text
//! ypd --listen 127.0.0.1:7431 --domain purdue --arch sun --machines 1500 \
//!     --sessions reactor --io-threads 2 --workers 4 --peer 127.0.0.1:7432 &
//! ypd --listen 127.0.0.1:7432 --domain upc --arch hp --machines 400 \
//!     --sessions reactor --peer 127.0.0.1:7431 &
//! cargo run --release -p actyp-suite --example reactor_soak -- \
//!     127.0.0.1:7431 127.0.0.1:7432 --halt
//! ```
//!
//! Every client thread pipelines a batch of locally satisfiable queries
//! (several tickets in flight on one connection) and every fourth client
//! additionally submits a query only the peer domain can satisfy, so
//! delegations multiplex on the one peer link while the client load runs.
//! The example asserts every ticket settles, every allocation releases,
//! and — with `--halt` or in self-contained mode — that both daemons
//! drain cleanly.

use std::sync::Arc;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederationConfig, PipelineBuilder, RemoteBackend, ResourceManager, ServerHandle,
    StageAddress,
};

const CLIENTS: usize = 100;
const BATCH: usize = 6;

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

fn spawn_domain(
    domain: &str,
    arch: &str,
    machines: usize,
    seed: u64,
    peers: Vec<StageAddress>,
) -> ServerHandle {
    let (handle, _backend) = PipelineBuilder::new()
        .database(homogeneous_db(arch, machines, seed))
        .ttl(8)
        .window(64)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: domain.to_string(),
                ttl: 8,
                peers,
                ..FederationConfig::default()
            },
        )
        .expect("federated reactor daemon starts");
    println!(
        "self-hosted reactor ypd for domain `{domain}` ({arch}, {machines} machines) on {}",
        handle.local_addr()
    );
    handle
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let halt_flag = argv.iter().any(|a| a == "--halt");
    let addrs: Vec<StageAddress> = argv
        .iter()
        .filter(|a| *a != "--halt")
        .map(|a| a.parse().expect("address parses as host:port"))
        .collect();

    let (entry, others, hosted) = match addrs.first() {
        Some(addr) => {
            println!("soaking external reactor ypd at {addr}");
            (addr.clone(), addrs[1..].to_vec(), Vec::new())
        }
        None => {
            let upc = spawn_domain("upc", "hp", 400, 11, Vec::new());
            let purdue = spawn_domain("purdue", "sun", 1500, 10, vec![upc.local_addr()]);
            let entry = purdue.local_addr();
            let others = vec![upc.local_addr()];
            (entry, others, vec![purdue, upc])
        }
    };

    // The soak: CLIENTS concurrent connections, each pipelining BATCH
    // tickets; every fourth also forces a delegation to the peer domain.
    println!("soaking with {CLIENTS} clients × {BATCH} pipelined tickets each …");
    let entry = Arc::new(entry);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let entry = entry.clone();
            std::thread::spawn(move || -> (usize, u64) {
                let manager =
                    RemoteBackend::connect(&entry).expect("client connects to the entry daemon");
                let local = actyp_query::parse_query("punch.rsrc.arch = sun\n").unwrap();
                let mut settled = 0usize;
                // Pipelined local load: BATCH tickets in flight at once on
                // this one connection.
                let tickets = manager
                    .submit_batch(vec![local; BATCH])
                    .expect("batch admits");
                for ticket in tickets {
                    let allocations = manager.wait(ticket).expect("local ticket settles");
                    manager.release(&allocations[0]).expect("release");
                    settled += 1;
                }
                // Concurrent delegation load on the shared peer link.
                if i % 4 == 0 {
                    let allocations = manager
                        .submit_text_wait("punch.rsrc.arch = hp\n")
                        .expect("the peer domain satisfies the delegated query");
                    assert!(allocations[0].machine_name.contains("hp"));
                    manager.release(&allocations[0]).expect("remote release");
                    settled += 1;
                }
                let delegations = manager.stats().delegations_out;
                manager.shutdown().expect("clean client shutdown");
                (settled, delegations)
            })
        })
        .collect();

    let mut total = 0usize;
    let mut delegations_seen = 0u64;
    for worker in workers {
        let (settled, delegations) = worker.join().expect("client thread survives");
        total += settled;
        delegations_seen = delegations_seen.max(delegations);
    }
    let expected = CLIENTS * BATCH + CLIENTS / 4;
    assert_eq!(total, expected, "every ticket settled");
    assert!(
        delegations_seen >= (CLIENTS / 4) as u64,
        "the delegations ran concurrently over the peer link ({delegations_seen} recorded)"
    );
    println!(
        "soak done: {total} tickets settled ({} delegated across the federation)",
        delegations_seen
    );

    let manager = RemoteBackend::connect(&entry).expect("control connection");
    if halt_flag || !hosted.is_empty() {
        manager
            .halt_daemon()
            .expect("entry daemon accepts the halt");
        for addr in &others {
            let peer = RemoteBackend::connect(addr).expect("connect to peer daemon");
            peer.halt_daemon().expect("peer daemon accepts the halt");
            peer.shutdown().expect("clean peer session shutdown");
        }
        println!("asked every daemon to drain");
    }
    manager.shutdown().expect("clean session shutdown");
    for server in hosted {
        server.join().expect("self-hosted daemon drains cleanly");
    }
    println!("reactor_soak example finished");
}
