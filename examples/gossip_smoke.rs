//! Anti-entropy gossip between peered `ypd` daemons — a pool registered
//! mid-session on one daemon becomes delegable from the other with ZERO
//! peer redials, over the standing links alone.
//!
//! Two administrative domains: the entry daemon `purdue` (sun machines)
//! peers at `upc` (hp machines); `upc` peers at nobody.  The entry's
//! periodic gossip tick establishes the link.  A client of *upc* then
//! creates an hp pool there (the first hp query a pool manager sees);
//! the entry learns of it through an advertisement-log delta on the
//! standing link — observable as `gossip_deltas_in` in its stats line —
//! and a client of *purdue* gets an hp allocation delegated in one hop.
//! A repeat query rides the learned route cache (`route_hits`).  The
//! whole run keeps `peer_redials` at zero: that counter only moves when
//! pool visibility had to be repaired by redialing a link, which is
//! exactly what the gossip plane exists to make unnecessary.
//!
//! Run self-contained (hosts both daemons in-process on loopback):
//!
//! ```text
//! cargo run -p actyp-suite --example gossip_smoke
//! ```
//!
//! Or against external daemons (as CI's `gossip-smoke` job does):
//!
//! ```text
//! ypd --listen 127.0.0.1:7431 --domain purdue --arch sun \
//!     --peer 127.0.0.1:7432 --gossip-interval 200 &
//! ypd --listen 127.0.0.1:7432 --domain upc --arch hp &
//! cargo run -p actyp-suite --example gossip_smoke -- \
//!     127.0.0.1:7431 127.0.0.1:7432 --halt
//! ```
//!
//! The first address is the gossiping entry daemon, the second the pool
//! host.  With `--halt` the example drains both daemons on the way out,
//! so backgrounded `ypd` processes exit cleanly — that is what CI
//! asserts.

use std::time::{Duration, Instant};

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederationConfig, PipelineBuilder, RemoteBackend, ResourceManager, ServerHandle,
    StageAddress,
};

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

fn spawn_domain(domain: &str, arch: &str, seed: u64, peers: Vec<StageAddress>) -> ServerHandle {
    let (handle, _backend) = PipelineBuilder::new()
        .database(homogeneous_db(arch, 50, seed))
        .ttl(8)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: domain.to_string(),
                ttl: 8,
                peers,
                gossip_interval: Duration::from_millis(200),
                ..FederationConfig::default()
            },
        )
        .expect("federated daemon starts");
    println!(
        "self-hosted ypd for domain `{domain}` ({arch}) on {}",
        handle.local_addr()
    );
    handle
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let halt_flag = argv.iter().any(|a| a == "--halt");
    let addrs: Vec<StageAddress> = argv
        .iter()
        .filter(|a| *a != "--halt")
        .map(|a| a.parse().expect("address parses as host:port"))
        .collect();

    // External mode: first address is the gossiping entry, second the
    // pool host.  Self-contained mode hosts both right here.
    let (entry_addr, host_addr, hosted) = match addrs.as_slice() {
        [entry, host, ..] => {
            println!("driving external daemons: entry {entry}, pool host {host}");
            (entry.clone(), host.clone(), Vec::new())
        }
        [_] => panic!("need zero addresses (self-contained) or two (entry, pool host)"),
        [] => {
            let upc = spawn_domain("upc", "hp", 7, Vec::new());
            let purdue = spawn_domain("purdue", "sun", 6, vec![upc.local_addr()]);
            let (entry, host) = (purdue.local_addr(), upc.local_addr());
            (entry, host, vec![purdue, upc])
        }
    };

    let entry = RemoteBackend::connect(&entry_addr).expect("connect to entry daemon");
    let host = RemoteBackend::connect(&host_addr).expect("connect to pool host");

    // Mid-session: a client of the pool host creates the hp pool there.
    // Before this moment no daemon anywhere has one.
    let held = host
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .expect("the hp-only host satisfies its own query");
    println!(
        "registered an hp pool on the host mid-session ({})",
        held[0].machine_name
    );

    // The advertisement crosses to the entry on the next anti-entropy
    // round — watch its gossip counter, not a redial, deliver the news.
    let deadline = Instant::now() + Duration::from_secs(15);
    let stats = loop {
        let stats = entry.stats();
        if stats.gossip_deltas_in >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "the pool advertisement never gossiped to the entry: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    println!(
        "entry learned the pool by gossip: gossip_deltas_in={} peer_redials={}",
        stats.gossip_deltas_in, stats.peer_redials
    );
    assert_eq!(
        stats.peer_redials, 0,
        "the advertisement must arrive over the standing link, not a redial"
    );

    // The entry now delegates an hp query straight to the host.
    let first = entry
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .expect("the gossiped pool satisfies the delegated query");
    assert!(
        first[0].machine_name.contains("hp"),
        "the allocation comes from the hp-only peer domain"
    );
    println!(
        "delegated allocation: {} (pool `{}`)",
        first[0].machine_name, first[0].pool
    );

    // A repeat query rides the learned one-hop route.
    let second = entry
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .expect("the repeat query settles too");
    let stats = entry.stats();
    println!(
        "entry daemon stats: {} requests, {} delegated out, route_hits={} \
         route_misses={} gossip_deltas_in={} gossip_deltas_out={} peer_redials={}",
        stats.requests,
        stats.delegations_out,
        stats.route_hits,
        stats.route_misses,
        stats.gossip_deltas_in,
        stats.gossip_deltas_out,
        stats.peer_redials
    );
    assert!(stats.delegations_out >= 2, "both queries crossed the wire");
    assert!(
        stats.route_hits >= 1,
        "the repeat query hit the route cache"
    );
    assert_eq!(stats.peer_redials, 0, "zero redials end to end");

    for allocation in first.iter().chain(second.iter()) {
        entry
            .release(allocation)
            .expect("release routes to the peer");
    }
    host.release(&held[0]).expect("release the host's own pool");
    println!("released every allocation in its home domain");

    if halt_flag || !hosted.is_empty() {
        entry.halt_daemon().expect("entry daemon accepts the halt");
        host.halt_daemon().expect("pool host accepts the halt");
        println!("asked both daemons to drain");
    }
    entry.shutdown().expect("clean entry session shutdown");
    host.shutdown().expect("clean host session shutdown");
    for server in hosted {
        server.join().expect("self-hosted daemon drains cleanly");
    }
    println!("gossip_smoke example finished");
}
