//! Remote quickstart: the same `ResourceManager` client code as
//! `quickstart`, but across a real TCP hop to a `ypd` daemon speaking the
//! versioned `actyp-proto` wire protocol.
//!
//! Run self-contained (the example hosts an in-process daemon on an
//! ephemeral loopback port, connects to it, then drains it):
//!
//! ```text
//! cargo run -p actyp-suite --example remote_quickstart
//! ```
//!
//! Or against an external daemon (as the CI smoke job does):
//!
//! ```text
//! cargo run --release --bin ypd -- --listen 127.0.0.1:7411 &
//! cargo run --release -p actyp-suite --example remote_quickstart -- 127.0.0.1:7411 --halt
//! ```
//!
//! With `--halt` the example asks the daemon to drain on its way out, so a
//! backgrounded `ypd` exits cleanly — that is what CI asserts.

use std::time::Duration;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder, ResourceManager, StageAddress};

fn main() {
    // Address from argv or environment; otherwise self-host a daemon.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let halt_flag = argv.iter().any(|a| a == "--halt");
    let addr_text = argv
        .iter()
        .find(|a| *a != "--halt")
        .cloned()
        .or_else(|| std::env::var("ACTYP_YPD_ADDR").ok());
    // A self-hosted daemon is always drained on the way out; an external
    // one only when the caller passed --halt.
    let halt = halt_flag || addr_text.is_none();

    let (addr, hosted) = match addr_text {
        Some(text) => {
            let addr: StageAddress = text.parse().expect("address parses as host:port");
            println!("connecting to external ypd at {addr}");
            (addr, None)
        }
        None => {
            let db = SyntheticFleet::new(FleetSpec::with_machines(500), 42)
                .generate()
                .into_shared();
            let server = PipelineBuilder::new()
                .database(db)
                .query_managers(2)
                .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Live)
                .expect("loopback daemon starts");
            let addr = server.local_addr();
            println!("self-hosted ypd listening on {addr}");
            (addr, Some(server))
        }
    };

    // One connection, the full protocol: version negotiation first.
    let manager = PipelineBuilder::remote(&addr).expect("connect and negotiate");
    println!(
        "connected; negotiated protocol version {}",
        manager.protocol_version()
    );

    // The paper's pipelining across the wire: a batch of tickets in flight
    // on this single socket before any of them is redeemed.
    let query = "\
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.user.login = kapadia
punch.user.accessgroup = ece
";
    let parsed = actyp_query::parse_query(query).expect("query parses");
    let tickets = manager
        .submit_batch(vec![parsed; 6])
        .expect("batch accepted");
    println!(
        "6 tickets submitted on one connection; server reports {} in flight",
        manager.stats().in_flight
    );

    // Redeem them: one bounded wait (the deadline travels to the server),
    // the rest blocking.
    let mut allocations = Vec::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = if i == 0 {
            manager
                .wait_deadline(ticket, Duration::from_secs(30))
                .expect("resolves well within 30 s")
        } else {
            manager.wait(ticket)
        };
        let mut batch = outcome.expect("allocation succeeds");
        println!(
            "ticket {i}: {} (pool `{}`, examined {})",
            batch[0].machine_name, batch[0].pool, batch[0].examined
        );
        allocations.append(&mut batch);
    }

    // Release everything and read back the daemon's counters.
    for allocation in &allocations {
        manager.release(allocation).expect("release succeeds");
    }
    let stats = manager.stats();
    println!(
        "daemon stats: {} requests, {} allocations, {} releases, {} in flight",
        stats.requests, stats.allocations, stats.releases, stats.in_flight
    );
    assert_eq!(stats.in_flight, 0, "every ticket was redeemed");

    if halt {
        manager.halt_daemon().expect("daemon accepts the halt");
        println!("asked the daemon to drain");
    }
    manager.shutdown().expect("clean session shutdown");
    if let Some(server) = hosted {
        server.join().expect("self-hosted daemon drains cleanly");
        println!("self-hosted daemon drained");
    }
    println!("done");
}
