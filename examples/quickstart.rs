//! Quickstart: stand up an active yellow pages pipeline over a synthetic
//! fleet through the unified `ResourceManager` API, submit the paper's
//! example query, and release the allocation.
//!
//! ```text
//! cargo run -p actyp-suite --example quickstart
//! ```

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder};

fn main() {
    // 1. A resource database of 500 machines (the "white pages").
    let db = SyntheticFleet::new(FleetSpec::with_machines(500), 42)
        .generate()
        .into_shared();
    println!("white pages: {} machines registered", db.read().len());

    // 2. The resource-management pipeline behind the one client surface.
    //    Swap `Embedded` for `Live`, `CentralQueue` or `Matchmaker` to run
    //    the same client code against a different architecture.
    let manager = PipelineBuilder::new()
        .database(db)
        .build(BackendKind::Embedded)
        .expect("a database was configured");

    // 3. The paper's example query, in the native key/value language.
    let query = "\
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
";
    println!("submitting query:\n{query}");

    let ticket = manager.submit_text(query).expect("query parses");
    let allocations = manager.wait(ticket).expect("allocation succeeds");
    let allocation = &allocations[0];
    println!(
        "allocated {} (execution unit port {}, mount manager port {})",
        allocation.machine_name, allocation.execution_port, allocation.mount_port
    );
    println!(
        "session key {}; served by pool `{}` after examining {} machines",
        allocation.access_key, allocation.pool, allocation.examined
    );

    // 4. Submitting the same kind of query again reuses the dynamically
    //    created pool — the "active yellow pages" effect.
    let again = manager
        .submit_text_wait(query)
        .expect("second allocation succeeds");
    println!(
        "second query served by the same pool: {}",
        again[0].pool == allocation.pool
    );

    // 5. Release everything (event 6 of Figure 1: the desktop relinquishes
    //    the shadow account and resources).
    for a in again.iter().chain(allocations.iter()) {
        manager.release(a).expect("release succeeds");
    }
    println!("released; stats: {:?}", manager.stats());
    manager.shutdown().expect("clean teardown");
}
