//! Quickstart: stand up an active yellow pages pipeline over a synthetic
//! fleet, submit the paper's example query, and release the allocation.
//!
//! ```text
//! cargo run -p actyp-suite --example quickstart
//! ```

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{Engine, PipelineConfig};

fn main() {
    // 1. A resource database of 500 machines (the "white pages").
    let db = SyntheticFleet::new(FleetSpec::with_machines(500), 42)
        .generate()
        .into_shared();
    println!("white pages: {} machines registered", db.read().len());

    // 2. The resource-management pipeline: query managers, pool managers,
    //    and pools created on demand.
    let mut engine = Engine::new(PipelineConfig::default(), db);

    // 3. The paper's example query, in the native key/value language.
    let query = "\
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
";
    println!("submitting query:\n{query}");

    let allocations = engine.submit_text(query).expect("allocation succeeds");
    let allocation = &allocations[0];
    println!(
        "allocated {} (execution unit port {}, mount manager port {})",
        allocation.machine_name, allocation.execution_port, allocation.mount_port
    );
    println!(
        "session key {}; served by pool `{}` after examining {} machines",
        allocation.access_key, allocation.pool, allocation.examined
    );
    println!(
        "pools now registered in the directory: {}",
        engine.pool_instances()
    );

    // 4. Submitting the same kind of query again reuses the dynamically
    //    created pool — the "active yellow pages" effect.
    let again = engine
        .submit_text(query)
        .expect("second allocation succeeds");
    println!(
        "second query served by the same pool: {}",
        again[0].pool == allocation.pool
    );

    // 5. Release everything (event 6 of Figure 1: the desktop relinquishes
    //    the shadow account and resources).
    for a in again.iter().chain(allocations.iter()) {
        engine.release(a).expect("release succeeds");
    }
    println!("released; engine stats: {:?}", engine.stats());
}
