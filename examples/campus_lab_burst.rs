//! Campus lab burst: the hot-spot scenario the paper uses to motivate pool
//! replication — "a large class is working on a lab or homework assignment"
//! and every student requests resources with the same specification.
//!
//! The example drives the full PUNCH stack (network desktop → application
//! management → ActYP pipeline) with a burst of identical SPICE runs and
//! reports how the single dynamically created pool absorbs it.
//!
//! ```text
//! cargo run -p actyp-suite --example campus_lab_burst
//! ```

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::PipelineConfig;
use actyp_punch::users::User;
use actyp_punch::{NetworkDesktop, UserRegistry};
use actyp_simnet::Rng;
use actyp_workload::{ClassAssignment, HotspotBurst};

fn main() {
    // A homogeneous teaching cluster: every machine is a sun box with 256 MB.
    let db = SyntheticFleet::new(FleetSpec::homogeneous(400, "sun", 256), 7)
        .generate()
        .into_shared();

    // A class of 60 students, all authorised for spice.
    let mut users = UserRegistry::demo();
    for i in 0..60 {
        users.register(
            User::new(
                &format!("student{i:03}"),
                "ece-students",
                "storage.purdue.edu",
            )
            .with_tools(["spice"]),
        );
    }
    let mut desktop = NetworkDesktop::with_users(db, PipelineConfig::default(), users);

    // Generate the burst: identical invocations spread over a lab session.
    let assignment = ClassAssignment::spice_lab(60);
    let burst = HotspotBurst::generate(&assignment, &mut Rng::new(11));
    println!(
        "class assignment: {} students submitting `{}` over {} seconds",
        assignment.students,
        assignment.tool_command,
        assignment.window.as_secs_f64()
    );

    // Submit every student's run through the desktop.
    let mut handles = Vec::new();
    let mut failures = 0usize;
    for (when, login, _query) in &burst.submissions {
        match desktop.start_run(login, &assignment.tool_command) {
            Ok(handle) => handles.push((*when, handle)),
            Err(err) => {
                failures += 1;
                eprintln!("{login}: {err}");
            }
        }
    }
    println!(
        "{} runs started, {} rejected; active runs: {}",
        handles.len(),
        failures,
        desktop.active_runs()
    );
    println!(
        "pool instances created for the whole burst: {} (identical specs map to one pool name)",
        desktop.manager().engine().pool_instances()
    );
    println!(
        "distinct mounts active (application + data per run): {}",
        desktop.mounts().active()
    );

    // Finish the lab: every run completes with a short CPU time, as the
    // Figure 9 distribution predicts for interactive class work.
    let mut cpu_rng = Rng::new(13);
    for (_, handle) in handles {
        let cpu = actyp_workload::CpuTimeDistribution::punch()
            .sample(&mut cpu_rng)
            .cpu_seconds
            .min(120.0);
        desktop.complete_run(handle, cpu).expect("run completes");
    }
    println!(
        "all runs completed; outstanding allocations: {}, active mounts: {}",
        desktop.active_runs(),
        desktop.mounts().active()
    );
}
