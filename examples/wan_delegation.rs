//! Wide-area delegation between peered `ypd` daemons — the paper's WAN
//! topology, over real sockets.
//!
//! Two administrative domains: `purdue` has only sun machines, `upc` only
//! hp machines.  A client connected to *purdue* asks for an hp machine;
//! the purdue daemon cannot satisfy the query locally, so it delegates it
//! over the wire (TTL and visited-domain list travelling with the query)
//! and the client's ticket settles with an allocation made in *upc*.
//!
//! Run self-contained (hosts both daemons in-process on loopback):
//!
//! ```text
//! cargo run -p actyp-suite --example wan_delegation
//! ```
//!
//! Or against external daemons (as CI's `federation-smoke` job does):
//!
//! ```text
//! ypd --listen 127.0.0.1:7421 --domain purdue --arch sun --peer 127.0.0.1:7422 &
//! ypd --listen 127.0.0.1:7422 --domain upc    --arch hp  --peer 127.0.0.1:7421 &
//! cargo run -p actyp-suite --example wan_delegation -- 127.0.0.1:7421 127.0.0.1:7422 --halt
//! ```
//!
//! With `--halt` the example drains every listed daemon on the way out, so
//! backgrounded `ypd` processes exit cleanly — that is what CI asserts.

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederationConfig, PipelineBuilder, RemoteBackend, ResourceManager, ServerHandle,
    StageAddress,
};

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

fn spawn_domain(domain: &str, arch: &str, seed: u64, peers: Vec<StageAddress>) -> ServerHandle {
    let (handle, _backend) = PipelineBuilder::new()
        .database(homogeneous_db(arch, 50, seed))
        .ttl(8)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: domain.to_string(),
                ttl: 8,
                peers,
                ..FederationConfig::default()
            },
        )
        .expect("federated daemon starts");
    println!(
        "self-hosted ypd for domain `{domain}` ({arch}) on {}",
        handle.local_addr()
    );
    handle
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let halt_flag = argv.iter().any(|a| a == "--halt");
    let addrs: Vec<StageAddress> = argv
        .iter()
        .filter(|a| *a != "--halt")
        .map(|a| a.parse().expect("address parses as host:port"))
        .collect();

    // External mode drives the first listed daemon; self-contained mode
    // hosts a two-domain federation right here.  `others` are the daemons
    // beyond the entry that a drain must also reach.
    let (entry, others, hosted) = match addrs.first() {
        Some(addr) => {
            println!("connecting to external federated ypd at {addr}");
            (addr.clone(), addrs[1..].to_vec(), Vec::new())
        }
        None => {
            // upc first (so its address exists), then purdue peered at it.
            let upc = spawn_domain("upc", "hp", 7, Vec::new());
            let purdue = spawn_domain("purdue", "sun", 6, vec![upc.local_addr()]);
            let entry = purdue.local_addr();
            let others = vec![upc.local_addr()];
            (entry, others, vec![purdue, upc])
        }
    };

    let manager = RemoteBackend::connect(&entry).expect("connect and negotiate");
    println!(
        "connected; negotiated protocol version {}",
        manager.protocol_version()
    );

    // The entry domain has no hp machines: this query *must* cross the
    // federation to succeed.
    let allocations = manager
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .expect("a peer domain satisfies the query");
    println!(
        "delegated allocation: {} (pool `{}`)",
        allocations[0].machine_name, allocations[0].pool
    );
    assert!(
        allocations[0].machine_name.contains("hp"),
        "the machine comes from the hp-only peer domain"
    );

    let stats = manager.stats();
    println!(
        "entry daemon stats: {} requests, {} delegated out, {} delegated in",
        stats.requests, stats.delegations_out, stats.delegations_in
    );
    assert!(stats.delegations_out >= 1, "the query crossed the wire");

    // A query *no* domain satisfies fails with a proper error — the
    // federation never hangs a ticket.
    let err = manager
        .submit_text_wait("punch.rsrc.arch = cray\n")
        .expect_err("no domain has cray machines");
    println!("unsatisfiable query failed cleanly: {err}");

    // Release travels back to the domain that made the allocation.
    for allocation in &allocations {
        manager
            .release(allocation)
            .expect("release routes to the peer");
    }
    println!("released the delegated allocation in its home domain");

    if halt_flag || !hosted.is_empty() {
        // Drain the entry daemon through this session, and every other
        // daemon through a dedicated session.
        manager
            .halt_daemon()
            .expect("entry daemon accepts the halt");
        for addr in &others {
            let peer = RemoteBackend::connect(addr).expect("connect to peer daemon");
            peer.halt_daemon().expect("peer daemon accepts the halt");
            peer.shutdown().expect("clean peer session shutdown");
        }
        println!("asked every daemon to drain");
    }
    manager.shutdown().expect("clean session shutdown");
    for server in hosted {
        server.join().expect("self-hosted daemon drains cleanly");
    }
    println!("wan_delegation example finished");
}
