//! Decentralised access control: machine user-group lists and usage
//! policies are enforced inside the pipeline, so different administrative
//! domains keep control over their own resources even when they are part of
//! one grid (the paper's first design requirement).
//!
//! ```text
//! cargo run -p actyp-suite --example multi_domain_policy
//! ```

use actyp_grid::{FleetSpec, SyntheticFleet, UsagePolicy};
use actyp_pipeline::{AllocationError, BackendKind, PipelineBuilder};

fn main() {
    // One domain whose machines are open to the `ece` group only, and whose
    // administrators additionally impose the paper's example policy: public
    // users may only use a machine while its load is below a threshold.
    let db = SyntheticFleet::new(FleetSpec::homogeneous(200, "sun", 512), 3)
        .generate()
        .into_shared();
    {
        let mut guard = db.write();
        let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let machine = guard.get_mut(id).unwrap();
            machine.user_groups = vec!["ece".to_string(), "public".to_string()];
            machine.usage_policy = UsagePolicy::public_only_when_idle(0.5);
            // Half of the machines are already busy with local work.
            if i % 2 == 0 {
                machine.dynamic.current_load = 1.5;
            }
        }
    }

    let manager = PipelineBuilder::new()
        .database(db)
        .build(BackendKind::Embedded)
        .expect("a database was configured");

    // An ece user is admitted everywhere.
    let ece = manager
        .submit_text_wait(
            "punch.rsrc.arch = sun\npunch.user.login = kapadia\npunch.user.accessgroup = ece\n",
        )
        .expect("ece user is admitted");
    println!(
        "ece user scheduled on {} (load-based policy does not apply to ece)",
        ece[0].machine_name
    );
    manager.release(&ece[0]).unwrap();

    // A public user is only admitted to idle machines.
    let public = manager
        .submit_text_wait(
            "punch.rsrc.arch = sun\npunch.user.login = guest\npunch.user.accessgroup = public\n",
        )
        .expect("an idle machine exists for the public user");
    println!(
        "public user scheduled on {} (an idle machine)",
        public[0].machine_name
    );
    manager.release(&public[0]).unwrap();

    // A user from a group the domain does not admit is rejected by every
    // machine, so the allocation fails even though machines are free.
    let outsider = manager.submit_text_wait(
        "punch.rsrc.arch = sun\npunch.user.login = mallory\npunch.user.accessgroup = physics\n",
    );
    match outsider {
        Err(AllocationError::NoneAvailable) | Err(AllocationError::PolicyDenied) => {
            println!("outsider group correctly rejected by the domain's access control");
        }
        other => println!("unexpected outcome for the outsider: {other:?}"),
    }

    println!("stats: {:?}", manager.stats());
}
