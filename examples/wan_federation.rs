//! Wide-area federation: reproduce the paper's WAN experiment setting in
//! miniature — clients at one site, parts of the ActYP service at another —
//! and show both what the simulation measures (Figure 5's latency floor) and
//! how the live pipeline delegates queries between the two domains.  The
//! live deployment is driven through the unified `ResourceManager` API with
//! ticket-based submission, so the two cross-domain queries are in flight
//! simultaneously.
//!
//! ```text
//! cargo run -p actyp-suite --example wan_federation
//! ```

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::sim::{ExperimentConfig, PoolTopology, SimulatedPipeline};
use actyp_pipeline::{PipelineBuilder, ResourceManager};
use actyp_simnet::{LinkProfile, NetworkModel};

fn main() {
    // Part 1 — simulated LAN vs. WAN response times (the Figure 4/5
    // contrast) for a fixed topology of 8 pools and 16 clients.
    let base = ExperimentConfig {
        machines: 1_600,
        topology: PoolTopology::Striped { pools: 8 },
        clients: 16,
        requests_per_client: 10,
        ..ExperimentConfig::paper_baseline()
    };
    let lan = SimulatedPipeline::new(base.clone()).run();
    let wan = SimulatedPipeline::new(ExperimentConfig {
        network: NetworkModel::wan(),
        client_link: LinkProfile::Wan,
        ..base
    })
    .run();
    println!(
        "simulated mean response, LAN configuration: {:.3} s",
        lan.mean_response()
    );
    println!(
        "simulated mean response, WAN configuration: {:.3} s",
        wan.mean_response()
    );
    println!(
        "WAN adds ≈{:.0} ms of unavoidable round-trip latency\n",
        (wan.mean_response() - lan.mean_response()) * 1e3
    );

    // Part 2 — a live federated deployment: Purdue hosts sun machines, UPC
    // hosts hp machines, each behind its own pool manager; queries are
    // delegated across domains when the first manager cannot create a pool.
    let purdue = SyntheticFleet::new(FleetSpec::homogeneous(120, "sun", 256), 1)
        .generate()
        .into_shared();
    let upc = SyntheticFleet::new(FleetSpec::homogeneous(120, "hp", 512), 2)
        .generate()
        .into_shared();
    let pipeline = PipelineBuilder::new()
        .federated(vec![
            ("purdue".to_string(), purdue),
            ("upc".to_string(), upc),
        ])
        .window(8)
        .build_live()
        .expect("domains were configured");

    // Both queries are launched before either reply is awaited — the
    // pipelining the paper measures, from one client thread.
    let sun_ticket = pipeline
        .submit_text("punch.rsrc.arch = sun\n")
        .expect("sun query parses");
    let hp_ticket = pipeline
        .submit_text("punch.rsrc.arch = hp\n")
        .expect("hp query parses");
    for (arch, ticket) in [("sun", sun_ticket), ("hp", hp_ticket)] {
        let allocations = pipeline
            .wait(ticket)
            .expect("federated allocation succeeds");
        println!(
            "query for `{arch}` satisfied by {} (pool `{}`)",
            allocations[0].machine_name, allocations[0].pool
        );
        pipeline.release(&allocations[0]).expect("release succeeds");
    }

    // A composite query spanning both domains is decomposed, served at each
    // site, and re-integrated.
    let both = pipeline
        .submit_text_wait("punch.rsrc.arch = sun | hp\n")
        .expect("composite allocation succeeds");
    println!(
        "composite query returned {} matches across domains: {:?}",
        both.len(),
        both.iter()
            .map(|a| a.machine_name.clone())
            .collect::<Vec<_>>()
    );
    for a in &both {
        pipeline.release(a).expect("release succeeds");
    }
    println!("stats: {:?}", pipeline.stats());
    pipeline.shutdown().expect("clean teardown");
}
